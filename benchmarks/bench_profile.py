"""Self-profiler overhead gate (``repro.profile``).

Three claims are gated against the committed baseline in
``benchmarks/BENCH_profile.json``:

1. **Overhead budget.**  A fixed event-backend 1.5D training run is
   timed bare and under a :class:`~repro.profile.ProfileSession`
   (interleaved, medians over ``REPS`` pairs).  The profiled/bare wall
   ratio must stay under the committed ceiling — the documented <5%
   budget (``repro.profile.OVERHEAD_BUDGET``) — and the sampler's own
   measured busy fraction must stay under the budget too (the
   self-pacing in :mod:`repro.profile.sampler` enforces this even at
   high rank counts).

2. **Per-message host cost.**  The profiled run's all-in µs/msg
   (wall clock over messages sent — counter-exact, no sampling
   involved) must stay under the committed ceiling.  This is the
   ROADMAP's "~7µs per message" figure turned into a regression gate:
   message-path pessimisations show up here directly.

3. **Bit-identity.**  The profiler is observability only: a profiled
   and an unprofiled run of the same program must produce identical
   weights, losses, virtual clocks, and canonical traces.

Exit-code convention (same as the other ``BENCH_*`` gates):

* ``0`` — all gates pass.
* ``1`` — regression (``REGRESSION: ...`` on stderr).
* ``2`` — configuration error (unreadable/mismatched baseline).

Refresh the baseline after an intentional change with::

    python benchmarks/bench_profile.py --update-baseline
"""

import argparse
import json
import os
import statistics
import sys
import time

import numpy as np

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_profile.json")
BENCH_SCHEMA = "repro.profile.bench/v1"

REPS = 5

CONFIG = {
    "run": {"pr": 4, "pc": 4, "steps": 40, "dims": [64, 64, 32], "hz": 197.0},
    "reps": REPS,
}

# Committed gates.  The documented <5% budget (OVERHEAD_BUDGET) is
# enforced on the sampler's *directly measured* self time — stable at
# ~0.5% — because the identical workload's wall time swings ±15%
# run-to-run on a shared single-core container, so an end-to-end wall
# ratio cannot resolve a 5% effect there.  The ratio is still gated as
# a coarse backstop against gross pessimisation (a hook on the wrong
# path, a sampler that stops pacing): min(profiled)/min(bare) walls —
# minima because scheduling noise only ever adds time — against a
# ceiling with noise headroom above the budget (quiet-host ratios sit
# at ~0.99-1.06, but loaded runs have been observed at 1.16).  The
# µs/msg ceiling carries ~4x headroom over quiet measurements
# (~45µs/msg all-in at this size, scheduler handoff dominating) for
# the same reason.
CEILING_OVERHEAD_RATIO = 1.25
CEILING_US_PER_MSG = 180.0


def _workload(profile=None):
    """One fixed event-backend training run; returns (wall_s, outputs)."""
    from repro.dist.train import MLPParams, distributed_mlp_train
    from repro.simmpi.engine import SimEngine

    cfg = CONFIG["run"]
    pr, pc = cfg["pr"], cfg["pc"]
    dims = tuple(cfg["dims"])
    batch = pc * 2
    rng = np.random.default_rng(0)
    x = rng.standard_normal((dims[0], 2 * batch))
    y = rng.integers(0, dims[-1], 2 * batch)
    params0 = MLPParams.init(dims, seed=1)
    engine = SimEngine(pr * pc, backend="event")
    t0 = time.monotonic()
    weights, losses, sim = distributed_mlp_train(
        params0, x, y, pr=pr, pc=pc, batch=batch, steps=cfg["steps"],
        engine=engine, profile=profile,
    )
    wall = time.monotonic() - t0
    return wall, (weights, losses, sim)


def _overhead_ratios():
    """Interleaved bare/profiled walls; robust ratio + per-rep reports.

    Returns ``(ratio, pair_ratios, reports)`` where ``ratio`` is
    ``min(profiled walls) / min(bare walls)`` — minima because
    OS-scheduling noise only ever *adds* wall time, making this the
    robust estimator on shared single-core runners where per-pair
    ratios swing ±15% (the pair ratios are recorded for eyes).
    """
    from repro.profile import ProfileSession

    bare_walls = []
    profiled_walls = []
    reports = []
    for _ in range(REPS):
        bare_wall, _ = _workload()
        session = ProfileSession(hz=CONFIG["run"]["hz"])
        profiled_wall, _ = _workload(profile=session)
        bare_walls.append(bare_wall)
        profiled_walls.append(profiled_wall)
        reports.append(session.report())
    ratio = min(profiled_walls) / min(bare_walls)
    pairs = [p / b for p, b in zip(profiled_walls, bare_walls)]
    return ratio, pairs, reports


def _bit_identity():
    """Profiled vs unprofiled traced run: all outputs bit-identical."""
    from repro.dist.train import MLPParams, distributed_mlp_train
    from repro.profile import ProfileSession
    from repro.simmpi.engine import SimEngine

    dims = (12, 10, 6)
    rng = np.random.default_rng(3)
    x = rng.standard_normal((dims[0], 32))
    y = rng.integers(0, dims[-1], 32)
    params0 = MLPParams.init(dims, seed=2)
    out = {}
    for profiled in (False, True):
        engine = SimEngine(4, backend="event", trace=True)
        session = ProfileSession() if profiled else None
        w, losses, sim = distributed_mlp_train(
            params0, x, y, pr=2, pc=2, batch=8, steps=2,
            engine=engine, profile=session,
        )
        out[profiled] = (w, losses, sim, engine.tracer.canonical())
    w0, l0, s0, c0 = out[False]
    w1, l1, s1, c1 = out[True]
    return (
        all(a.tobytes() == b.tobytes() for a, b in zip(w0, w1))
        and l0 == l1
        and s0.clocks == s1.clocks
        and c0 == c1
    )


def run_profile_bench() -> dict:
    from repro.profile import OVERHEAD_BUDGET

    ratio, pair_ratios, reports = _overhead_ratios()
    # Median-rep derived figures: the counter-exact all-in µs/msg and
    # the sampler's directly measured self-time fraction.
    us_per_msg = statistics.median(
        r.us_per_msg_allin for r in reports if r.us_per_msg_allin
    )
    sampler_frac = statistics.median(r.overhead_frac for r in reports)
    attribution_ok = all(
        r.ticks == 0 or abs(r.attribution_total_s - r.wall_s) <= 0.10 * r.wall_s
        for r in reports
    )
    return {
        "schema": BENCH_SCHEMA,
        "config": CONFIG,
        "overhead_ratio": ratio,
        "overhead_ratio_reps": pair_ratios,
        "sampler_busy_frac": sampler_frac,
        "us_per_msg_allin": us_per_msg,
        "attribution_ok": attribution_ok,
        "identical": _bit_identity(),
        "budget": OVERHEAD_BUDGET,
        "ceiling_overhead_ratio": CEILING_OVERHEAD_RATIO,
        "ceiling_us_per_msg": CEILING_US_PER_MSG,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=BASELINE_PATH)
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument(
        "--tolerance", type=float, default=0.0,
        help="extra slack on the committed gates (fraction)",
    )
    args = parser.parse_args(argv)
    if args.tolerance < 0:
        print("bench gate error: tolerance must be >= 0", file=sys.stderr)
        return 2

    record = run_profile_bench()
    print(f"overhead    : profiled/bare wall ratio {record['overhead_ratio']:.3f} "
          f"(reps {[f'{r:.3f}' for r in record['overhead_ratio_reps']]})")
    print(f"sampler     : busy fraction {record['sampler_busy_frac']:.2%} "
          f"of wall (budget {record['budget']:.0%})")
    print(f"message path: {record['us_per_msg_allin']:.1f} µs/msg all-in "
          "(wall / msgs, counter-exact)")
    print(f"attribution : {'PASS' if record['attribution_ok'] else 'FAIL'} "
          "(rows sum to wall within 10%)")
    print(f"identity    : {'PASS' if record['identical'] else 'FAIL'}")

    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline    : updated {args.baseline}")
        return 0

    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read baseline {args.baseline!r}: {exc}", file=sys.stderr)
        return 2
    if baseline.get("schema") != BENCH_SCHEMA:
        print(f"bad baseline schema {baseline.get('schema')!r}", file=sys.stderr)
        return 2
    if baseline.get("config") != record["config"]:
        print("baseline config does not match this benchmark's config; "
              "re-run with --update-baseline", file=sys.stderr)
        return 2

    failures = []
    ceiling_ratio = float(baseline["ceiling_overhead_ratio"]) * (1.0 + args.tolerance)
    if record["overhead_ratio"] > ceiling_ratio:
        failures.append(
            f"profiler overhead ratio {record['overhead_ratio']:.3f} exceeds "
            f"the committed ceiling {ceiling_ratio:.3f}"
        )
    budget = float(baseline["budget"]) * (1.0 + args.tolerance)
    if record["sampler_busy_frac"] > budget:
        failures.append(
            f"sampler busy fraction {record['sampler_busy_frac']:.2%} exceeds "
            f"the budget {budget:.2%}"
        )
    ceiling_msg = float(baseline["ceiling_us_per_msg"]) * (1.0 + args.tolerance)
    if record["us_per_msg_allin"] > ceiling_msg:
        failures.append(
            f"all-in per-message host cost {record['us_per_msg_allin']:.1f}µs "
            f"exceeds the committed ceiling {ceiling_msg:.1f}µs"
        )
    if not record["attribution_ok"]:
        failures.append(
            "attribution rows no longer sum to the measured wall-clock "
            "within 10%"
        )
    if not record["identical"]:
        failures.append(
            "profiled run diverged bitwise from the unprofiled run "
            "(values, clocks, or canonical trace)"
        )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"gate        : PASS (ratio <= {ceiling_ratio:.3f}, "
          f"busy <= {budget:.2%}, µs/msg <= {ceiling_msg:.0f})")
    return 0


def test_profile_gate():
    """Tier-2 hook so `pytest benchmarks/bench_profile.py` runs the gate."""
    assert main([]) == 0


if __name__ == "__main__":
    raise SystemExit(main())
