"""Benchmark + regeneration of Fig. 10 (domain parallelism extends the
strong-scaling limit past P = B = 512, up to P = 4096)."""

from repro.experiments import fig10


def bench_fig10(benchmark, setting, record_result):
    result = benchmark(fig10.run, setting)
    record_result(result)
    rows = [r for r in result.main_table().rows if r["strategy"].startswith("domain")]
    totals = [r["total_s"] for r in rows]
    assert all(t1 < t0 for t0, t1 in zip(totals, totals[1:]))
