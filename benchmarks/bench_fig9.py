"""Benchmark + regeneration of Fig. 9 (weak scaling: B grows with P)."""

from repro.experiments import fig9


def bench_fig9(benchmark, setting, record_result):
    result = benchmark(fig9.run, setting)
    record_result(result)
    for row in result.main_table().rows:
        assert row["speedup_total"] >= 1.0
