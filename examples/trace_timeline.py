"""Visualise simulated communication with the trace timeline.

Runs two communication patterns on the simulated MPI and renders their
per-rank virtual-time timelines: the ring all-reduce's staggered
neighbour pipeline, and the domain-parallel halo exchange's single
pairwise burst.  The traffic matrix confirms the structure (ring ranks
talk only to their successor; halo ranks only to adjacent rows).

Run:  python examples/trace_timeline.py
"""

import numpy as np

from repro.dist.conv_domain import DomainConv2D
from repro.dist.partition import BlockPartition
from repro.machine.params import cori_knl
from repro.report.timeline import render_timeline, traffic_matrix
from repro.simmpi.engine import SimEngine


def main() -> None:
    machine = cori_knl()

    # --- ring all-reduce on 4 ranks --------------------------------------
    engine = SimEngine(4, machine, trace=True)

    def allreduce_prog(comm):
        comm.allreduce(np.ones(200_000, dtype=np.float32), algorithm="ring")

    engine.run(allreduce_prog)
    print("Ring all-reduce (4 ranks, 200k floats):")
    print(render_timeline(engine.tracer.events))
    print("\ntraffic (bytes): each rank sends only to (rank+1) mod P:")
    for src, row in sorted(traffic_matrix(engine.tracer.events).items()):
        print(f"  rank {src} -> {row}")

    # --- halo exchange of a domain-parallel convolution --------------------
    engine = SimEngine(4, machine, trace=True)
    x = np.random.default_rng(0).standard_normal((8, 16, 32, 32))
    w = np.random.default_rng(1).standard_normal((16, 16, 3, 3))
    part = BlockPartition(32, 4)

    def halo_prog(comm):
        op = DomainConv2D(comm, 32, 3, 3)
        op.forward(part.take(x, comm.rank, axis=2), w)

    engine.run(halo_prog)
    print("\nDomain-parallel 3x3 convolution (4 row blocks):")
    print(render_timeline(engine.tracer.events))
    print("\ntraffic (bytes): only adjacent row owners exchange boundaries:")
    for src, row in sorted(traffic_matrix(engine.tracer.events).items()):
        print(f"  rank {src} -> {row}")


if __name__ == "__main__":
    main()
