"""Quickstart: find the best parallelization strategy for AlexNet.

Reproduces the paper's core workflow in a dozen lines: fix the network,
batch size, process count and machine (Table 1), score every ``Pr x Pc``
grid with the Eq. 8 communication model plus the measured compute model,
and report the winner with its per-category breakdown.

Run:  python examples/quickstart.py
"""

from repro import (
    ComputeModel,
    alexnet,
    best_strategy,
    cori_knl,
    evaluate_grids,
    integrated_cost,
)
from repro.report.charts import stacked_bar_chart
from repro.report.tables import format_seconds


def main() -> None:
    network = alexnet()
    machine = cori_knl()
    compute = ComputeModel.knl_alexnet()
    batch, processes = 2048, 512

    print(f"Network: {network.name} ({network.total_params:,} parameters)")
    print(f"Machine: {machine.name}; B = {batch}, P = {processes}\n")

    # Score every grid under the same-grid 1.5D strategy (Fig. 6 style).
    points = evaluate_grids(network, batch, processes, machine, compute)
    chart = stacked_bar_chart(
        [pt.label for pt in points],
        [
            {
                "compute": pt.compute_epoch,
                "comm(model)": pt.comm_epoch - pt.batch_comm_epoch,
                "comm(batch)": pt.batch_comm_epoch,
            }
            for pt in points
        ],
        title="Epoch time per grid (seconds)",
    )
    print(chart)

    # Full search (Fig. 7 family included) for the overall winner.
    choice = best_strategy(network, batch, processes, machine, compute)
    print(f"\nBest strategy: {choice.strategy.describe()}")
    print(f"  epoch time      : {format_seconds(choice.total_epoch)}")
    print(f"  communication   : {format_seconds(choice.comm_epoch)}")

    breakdown = integrated_cost(network, batch, choice.strategy, machine)
    print("  per-category comm (one iteration):")
    for category, seconds in sorted(breakdown.by_category().items()):
        print(f"    {category:<22} {format_seconds(seconds)}")


if __name__ == "__main__":
    main()
