"""Integrated model+batch+domain CNN training (the paper's Section 2.4).

A small CNN is trained with the full integrated layout:

* convolutional layers run *domain parallel* — each rank owns a block of
  image rows and exchanges halo rows with its neighbours (Fig. 3);
* the flattened features are redistributed with one all-gather (Eq. 6);
* fully connected layers run the 1.5D model+batch layout (Fig. 5).

The distributed run is compared against serial SGD (exact match) and the
halo traffic is inspected via the simulator's message trace, confirming
the Eq. 7 volume ``B * X_W * X_C * floor(k_h / 2)`` per boundary.

Run:  python examples/domain_parallel_cnn.py
"""

import numpy as np

from repro.data.synthetic import synthetic_images
from repro.dist.integrated import (
    CNNParams,
    IntegratedCNNConfig,
    distributed_cnn_train,
    serial_cnn_train,
)
from repro.machine.params import cori_knl
from repro.report.tables import format_seconds


def main() -> None:
    config = IntegratedCNNConfig(
        in_channels=3,
        height=16,
        width=16,
        conv_channels=(8, 12),
        conv_kernels=(3, 3),
        pool_after=(True, True),
        fc_dims=(32, 6),
    )
    x, y = synthetic_images(48, 3, 16, 16, 6, seed=5)
    params = CNNParams.init(config, seed=7)
    kw = dict(batch=16, steps=10, lr=0.1, momentum=0.9)

    serial_params, serial_losses = serial_cnn_train(config, params, x, y, **kw)
    print(f"serial CNN: loss {serial_losses[0]:.4f} -> {serial_losses[-1]:.4f}\n")

    print(f"{'grid':>6} {'domain parts':>13} {'max weight err':>16} {'sim time':>10}")
    for pr, pc in [(2, 1), (4, 1), (2, 2), (4, 2)]:
        dparams, dlosses, run = distributed_cnn_train(
            config, params, x, y, pr=pr, pc=pc, machine=cori_knl(), **kw
        )
        err = max(
            float(np.max(np.abs(a - b)))
            for a, b in zip(dparams.all_params(), serial_params.all_params())
        )
        print(f"{pr}x{pc:<4} {pr:>13} {err:>16.2e} {format_seconds(run.time):>10}")

    # Inspect the halo traffic of one training step on a 4x1 grid.
    _, _, traced = distributed_cnn_train(
        config, params, x, y, pr=4, pc=1, batch=16, steps=1, lr=0.1,
        machine=cori_knl(), trace=True,
    )
    print("\nEach image is split into 4 row blocks; 3x3 convolutions exchange")
    print("floor(3/2) = 1 boundary row per neighbour, overlappable with the")
    print("interior computation (paper Eq. 7). Simulated step time:",
          format_seconds(traced.time))


if __name__ == "__main__":
    main()
