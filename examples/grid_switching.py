"""Executable Fig. 7: per-layer grid switching with live redistribution.

The paper's best configuration runs convolutional layers pure batch and
FC layers on a 1.5D ``Pr x Pc`` grid, switching layouts between them via
the Eq. 6 all-gather ("asymptotically free").  This example trains an
MLP with several placement mixes on the simulated runtime and checks
each against serial SGD — the redistribution collectives are exact, so
any mix of layouts trains identically to the serial algorithm.  (At
AlexNet scale the mixed placement wins outright — see ``repro run
fig7``; at this toy scale latency terms blur the comm-time ordering, so
the point here is correctness and the mechanics of the switch.)

Run:  python examples/grid_switching.py
"""

import numpy as np

from repro.data.synthetic import separable_blobs
from repro.dist.switching import distributed_switching_mlp_train
from repro.dist.train import MLPParams, serial_mlp_train
from repro.machine.params import cori_knl
from repro.report.tables import format_seconds


def main() -> None:
    # A network with the paper's AlexNet shape in miniature: a wide
    # activation-heavy front layer and weight-heavy back layers.
    dims = [64, 48, 256, 128, 4]
    x, y = separable_blobs(64, 256, 4, seed=3)
    params = MLPParams.init(dims, seed=4)
    kw = dict(batch=64, steps=10, lr=0.1, momentum=0.9)

    serial_w, serial_losses = serial_mlp_train(params, x, y, **kw)
    print(f"serial: loss {serial_losses[0]:.4f} -> {serial_losses[-1]:.4f}\n")

    mixes = [
        ("pure batch", ["batch", "batch", "batch", "batch"]),
        ("pure 1.5D model+batch", ["model", "model", "model", "model"]),
        ("front batch, back model (Fig. 7)", ["batch", "batch", "model", "model"]),
    ]
    print(f"{'configuration':<36} {'exact?':>7} {'sim comm time':>14}")
    for name, placements in mixes:
        weights, losses, run = distributed_switching_mlp_train(
            params, x, y, placements=placements, pr=4, pc=2,
            machine=cori_knl(), **kw,
        )
        exact = all(
            np.allclose(a, b, rtol=1e-9, atol=1e-11)
            for a, b in zip(weights, serial_w.weights)
        ) and np.allclose(losses, serial_losses, rtol=1e-9)
        print(f"{name:<36} {str(exact):>7} {format_seconds(run.time):>14}")

    print("\nEvery mix reproduces serial SGD exactly; each layout switch between")
    print("the batch and 1.5D layers costs one Eq.-6 all-gather — asymptotically")
    print("free relative to the model-parallel work it enables.")


if __name__ == "__main__":
    main()
