"""Measure 2D SUMMA vs the 1.5D layer product on the simulated runtime.

Section 4 argues no regime makes 2D algorithms communication-favourable
for the DNN products: when the weights dominate, stationary-A merely
approaches 1.5D; when the activations dominate, every 2D variant must
move two matrices where 1.5D moves one.  This example runs *both*
algorithms (the executable stationary-C SUMMA and the Fig. 5 1.5D
forward) for the product ``Y = W X`` across weight/activation balances
and prints the traced per-process communication volumes side by side
with the closed-form predictions.

Run:  python examples/summa_vs_15d.py
"""

import numpy as np

from repro.core.summa import summa_stationary_c_volume, volume_1p5d
from repro.dist.grid import GridComm
from repro.dist.matmul15d import forward_15d
from repro.dist.partition import BlockPartition
from repro.dist.summa2d import summa_matmul
from repro.machine.params import cori_knl
from repro.simmpi.engine import SimEngine


def measured_volume(prog, p):
    engine = SimEngine(p, cori_knl(), trace=True)
    engine.run(prog)
    return engine.tracer.total_bytes("recv") / p / 8  # words per process


def main() -> None:
    rng = np.random.default_rng(1)
    pr = pc = 2
    print(f"grid {pr}x{pc}; product Y = W X with W (d x d), X (d x B)\n")
    print(f"{'regime':<22} {'d':>5} {'B':>5} {'SUMMA-C meas':>13} {'1.5D meas':>10} "
          f"{'SUMMA pred':>11} {'1.5D pred':>10}")
    for label, d, batch in [
        ("|W| >> Bd (FC-like)", 64, 8),
        ("|W| ~ Bd", 32, 32),
        ("|W| << Bd (conv)", 16, 256),
    ]:
        w = rng.standard_normal((d, d))
        x = rng.standard_normal((d, batch))

        def summa_prog(comm):
            return summa_matmul(comm, w, x, pr, pc)

        def p15d_prog(comm):
            grid = GridComm(comm, pr, pc)
            w_local = BlockPartition(d, pr).take(w, grid.row, axis=0)
            x_local = BlockPartition(batch, pc).take(x, grid.col, axis=1)
            return forward_15d(grid, w_local, x_local)

        v_summa = measured_volume(summa_prog, pr * pc)
        v_15d = measured_volume(p15d_prog, pr * pc)
        # Closed forms count received panel words with the same
        # (p-1)/p ownership discount the trace shows.
        pred_summa = (d * d / pr) * (pc - 1) / pc + (d * batch / pc) * (pr - 1) / pr
        pred_15d = volume_1p5d(d, batch, pr, pc)
        print(f"{label:<22} {d:>5} {batch:>5} {v_summa:>13.0f} {v_15d:>10.0f} "
              f"{pred_summa:>11.0f} {pred_15d:>10.0f}")

    print("\n1.5D never moves more than SUMMA — and the gap widens exactly")
    print("where the paper says it should (activation-dominated layers).")


if __name__ == "__main__":
    main()
