"""Scaling past the batch-parallel limit with domain parallelism (Fig. 10).

Pure batch parallelism cannot use more processes than the batch size —
at ``P = B`` every process already holds a single sample.  The paper's
Section 2.4 extends the limit by splitting each *image* into domain
parts.  This example fixes ``B = 512`` and sweeps ``P`` to 4096,
reporting the epoch-time decomposition for each feasible strategy and
the halo-vs-allgather volume comparison that motivates choosing domain
over model parallelism for early layers.

Run:  python examples/scaling_beyond_batch.py
"""

from repro import ComputeModel, ProcessGrid, Strategy, alexnet, cori_knl, integrated_cost, simulate_epoch
from repro.report.tables import format_seconds


def main() -> None:
    network = alexnet()
    machine = cori_knl()
    compute = ComputeModel.knl_alexnet()
    batch = 512

    print(f"B = {batch} — pure batch parallelism cannot pass P = {batch}\n")
    print(f"{'P':>5} {'strategy':<26} {'grid':>8} {'compute':>10} {'comm':>10} {'total':>10}")
    for p in (512, 1024, 2048, 4096):
        rows = []
        if p <= batch:
            rows.append(("pure batch", Strategy.same_grid_model(network, ProcessGrid(1, p))))
        pr = max(1, p // batch)
        grid = ProcessGrid(pr, p // pr)
        rows.append((f"domain x{pr} + batch + model", Strategy.conv_domain_fc_model(network, grid)))
        for name, strategy in rows:
            pt = simulate_epoch(network, batch, strategy, machine, compute)
            print(
                f"{p:>5} {name:<26} {pt.label:>8} "
                f"{format_seconds(pt.compute_epoch):>10} "
                f"{format_seconds(pt.comm_epoch):>10} "
                f"{format_seconds(pt.total_epoch):>10}"
            )

    # Why domain instead of model for the early layers? Compare the
    # boundary-halo volume against the activation all-gather it replaces.
    grid = ProcessGrid(8, 512)
    dom = integrated_cost(network, batch, Strategy.conv_domain_fc_model(network, grid), machine)
    mod = integrated_cost(network, batch, Strategy.same_grid_model(network, grid), machine)
    halo = dom.filter("domain.").total
    gather = mod.filter("model.allgather_fwd", "model.allreduce_dx").total
    print(f"\nper-iteration conv-layer traffic at grid {grid}:")
    print(f"  domain halo exchanges : {format_seconds(halo)} (non-blocking, overlappable)")
    print(f"  model all-gather/dx   : {format_seconds(gather)} (blocking)")
    print(f"  -> the halo is {halo / gather:.1%} of the model-parallel activation traffic")


if __name__ == "__main__":
    main()
