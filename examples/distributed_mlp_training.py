"""Run real 1.5D distributed SGD and verify it against serial training.

This is the executable counterpart of the paper's Fig. 5: an MLP is
trained on a simulated ``Pr x Pc`` process grid — weight rows split over
``Pr``, batch columns over ``Pc`` — using Bruck all-gathers and ring
all-reduces over an in-process simulated MPI.  Synchronous SGD is
sequentially consistent, so every grid must deliver the *same* losses
and weights as serial SGD; the script prints the deviations plus each
grid's simulated communication time.

Run:  python examples/distributed_mlp_training.py
"""

import numpy as np

from repro.data.synthetic import separable_blobs
from repro.dist.train import MLPParams, distributed_mlp_train, serial_mlp_train
from repro.machine.params import cori_knl
from repro.report.tables import format_seconds


def main() -> None:
    # A learnable toy problem: 3 Gaussian blobs in 16 dimensions.
    x, y = separable_blobs(16, 240, 3, seed=0)
    params = MLPParams.init([16, 64, 32, 3], seed=1)
    kw = dict(batch=48, steps=25, lr=0.15, momentum=0.9)

    serial_w, serial_losses = serial_mlp_train(params, x, y, **kw)
    print(f"serial: loss {serial_losses[0]:.4f} -> {serial_losses[-1]:.4f} "
          f"over {len(serial_losses)} steps\n")

    print(f"{'grid':>6} {'max weight err':>16} {'max loss err':>14} {'sim comm time':>14}")
    for pr, pc in [(1, 4), (4, 1), (2, 2), (2, 3), (4, 2)]:
        weights, losses, run = distributed_mlp_train(
            params, x, y, pr=pr, pc=pc, machine=cori_knl(), **kw
        )
        w_err = max(float(np.max(np.abs(a - b))) for a, b in zip(weights, serial_w.weights))
        l_err = float(np.max(np.abs(np.array(losses) - np.array(serial_losses))))
        print(f"{pr}x{pc:<4} {w_err:>16.2e} {l_err:>14.2e} {format_seconds(run.time):>14}")

    print("\nEvery grid reproduces serial SGD exactly (fp noise only) —")
    print("the sequential consistency the paper's analysis assumes.")


if __name__ == "__main__":
    main()
