"""Regenerate every table and figure of the paper in one go.

Runs all registered experiments (Table 1, Figs. 4 and 6-10, the Eq. 5
crossover, the SUMMA comparison, the Eq. 6/memory ablations, and the
numerical-equivalence study) and writes their reports under
``results/`` next to this script.

Run:  python examples/reproduce_paper.py [output_dir]
"""

import os
import sys

from repro.experiments.registry import EXPERIMENTS
from repro.report.export import export_results, write_text


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(__file__), "results"
    )
    os.makedirs(out, exist_ok=True)
    for entry in EXPERIMENTS.values():
        print(f"running {entry.experiment_id} ({entry.paper_ref}) ...", flush=True)
        result = entry.runner()
        write_text(os.path.join(out, f"{entry.experiment_id}.txt"), result.render())
        for i, table in enumerate(result.tables):
            stem = entry.experiment_id if i == 0 else f"{entry.experiment_id}_{i}"
            export_results(table, out, stem)
        for note in result.notes:
            print(f"  {note}")
    print(f"\nreports written to {out}/")


if __name__ == "__main__":
    main()
