"""Strategy exploration across architectures (beyond the paper's AlexNet).

The paper notes its analysis "is generally applicable to any neural
network": this example sweeps the integrated-parallelism optimizer over
AlexNet, VGG-16, a 1x1-heavy residual-style stack and an RNN-like MLP,
showing how the best ``Pr x Pc`` grid shifts with the network's
weight-vs-activation balance (Eq. 5's ratio per layer drives it):

* FC-heavy networks (MLP) want large ``Pr`` — weights dominate;
* conv-heavy networks want large ``Pc`` — activations dominate;
* mixed networks (AlexNet/VGG) land in between, with conv layers pure
  batch and FC layers 1.5D (the Fig. 7 configuration).

Run:  python examples/strategy_explorer.py
"""

from repro import ComputeModel, alexnet, best_strategy, cori_knl, mlp, resnet_like_stack, vgg16
from repro.core.ratio import crossover_batch_size
from repro.machine.compute import EpochTimeTable
from repro.report.tables import format_seconds


def make_compute(flops_per_sample: float) -> ComputeModel:
    """Scale the embedded AlexNet table by relative per-sample flops.

    Good enough for cross-architecture comparisons: the table sets the
    efficiency curve; total work scales it.
    """
    base = EpochTimeTable.knl_alexnet()
    ratio = flops_per_sample / alexnet().total_flops
    scaled = {b: t * ratio for b, t in base.entries}
    return ComputeModel(EpochTimeTable(scaled, dataset_size=base.dataset_size))


def main() -> None:
    machine = cori_knl()
    batch, processes = 2048, 512
    networks = [
        alexnet(),
        vgg16(),
        resnet_like_stack(input_size=56, blocks=8),
        mlp([4096, 4096, 4096, 4096, 1000], name="RNN-like MLP"),
    ]

    print(f"B = {batch}, P = {processes}, machine = {machine.name}\n")
    print(f"{'network':<28} {'params':>12} {'best strategy':<28} {'epoch':>10} {'comm':>10}")
    for net in networks:
        compute = make_compute(net.total_flops)
        choice = best_strategy(net, batch, processes, machine, compute)
        print(
            f"{net.name:<28} {net.total_params:>12,} "
            f"{choice.strategy.describe():<28} "
            f"{format_seconds(choice.total_epoch):>10} "
            f"{format_seconds(choice.comm_epoch):>10}"
        )

    print("\nPer-layer Eq. 5 crossover batch (model parallelism wins below it):")
    net = alexnet(grouped=False)
    for w in net.weighted_layers:
        marker = "<-- model-friendly at small B" if crossover_batch_size(w) > 8 else ""
        print(f"  {w.name:<6} B* = {crossover_batch_size(w):>8.1f} {marker}")


if __name__ == "__main__":
    main()
