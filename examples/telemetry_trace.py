"""End-to-end telemetry: spans, metrics, the Eq. 8 audit, Chrome export.

Runs a traced 1.5D MLP training job on a 2x2 grid and shows all four
telemetry surfaces: the per-span virtual-time summary, aggregate
metrics, the measured-vs-analytic communication audit (which matches
the paper's cost model exactly), and a Chrome ``trace_event`` JSON you
can load in Perfetto (https://ui.perfetto.dev).

Run:  python examples/telemetry_trace.py [out_dir]
"""

import sys
import tempfile

from repro.telemetry.audit import audit_mlp_15d
from repro.telemetry.chrome import validate_chrome_trace, write_chrome_trace
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.summary import span_summary


def main() -> None:
    dims = (32, 24, 16, 10)
    report, events = audit_mlp_15d(dims, pr=2, pc=2, batch=16, steps=2)

    print("Per-span summary (2x2 grid, 2 steps):")
    print(span_summary(events).to_ascii())

    registry = MetricsRegistry()
    for event in events:
        registry.observe_event(event)
    sends = registry.counter("comm.messages")
    print(f"\np2p messages sent by rank 0: {int(sends.value(rank=0, op='send'))}")
    clock = registry.gauge("clock.seconds")
    print(f"rank 0 finished at virtual t = {clock.value(rank=0):.3e} s")

    print("\nMeasured vs analytic (Eq. 8):")
    print(report.to_table().to_ascii())
    assert report.exact
    print(
        "\nthe simulator's measured traffic matches the cost model with "
        "zero relative error on every bandwidth term"
    )

    out_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp()
    path = f"{out_dir}/trace.json"
    obj = write_chrome_trace(events, path, title="telemetry example")
    print(f"\nChrome trace: {validate_chrome_trace(obj)} events -> {path}")
    print("load it at https://ui.perfetto.dev to zoom through the run")


if __name__ == "__main__":
    main()
