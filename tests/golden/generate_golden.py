"""Regenerate the golden cost tables (run only to refresh intentionally).

Usage::

    PYTHONPATH=src python tests/golden/generate_golden.py

Freezes the serial Eq. 3/4/8/9 cost-model outputs for the paper's
Table-1 AlexNet configuration (B = 2048, Cori-KNL machine constants) on
five grid shapes of P = 512 — from pure batch ``1x512`` (Eq. 4) through
1.5D grids (Eq. 8/9) to pure model ``512x1`` (Eq. 3).  Every term's
latency/bandwidth/volume is stored as ``float.hex()`` so the regression
test (``tests/test_golden_costs.py``) can assert **exact** equality:
any change to these numbers is a cost-model change and must be
deliberate.
"""

import json
import os

from repro.core.costs import integrated_cost
from repro.core.strategy import ProcessGrid, Strategy
from repro.experiments.common import default_setting

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "alexnet_cost_tables.json")

BATCH = 2048
GRIDS = [(1, 512), (2, 256), (16, 32), (64, 8), (512, 1)]
FAMILIES = ["same_grid_model", "conv_batch_fc_model", "conv_domain_fc_model"]


def build_golden() -> dict:
    setting = default_setting()
    network, machine = setting.network, setting.machine
    cases = []
    for pr, pc in GRIDS:
        grid = ProcessGrid(pr, pc)
        for family in FAMILIES:
            strategy = getattr(Strategy, family)(network, grid)
            breakdown = integrated_cost(network, BATCH, strategy, machine)
            cases.append(
                {
                    "grid": [pr, pc],
                    "family": family,
                    "placements": [pl.value for pl in strategy.placements],
                    "total": breakdown.total.hex(),
                    "latency": breakdown.latency.hex(),
                    "bandwidth": breakdown.bandwidth.hex(),
                    "terms": [
                        {
                            "layer": term.layer,
                            "category": term.category,
                            "latency": term.cost.latency.hex(),
                            "bandwidth": term.cost.bandwidth.hex(),
                            "volume": float(term.volume).hex(),
                        }
                        for term in breakdown.terms
                    ],
                }
            )
    return {
        "description": (
            "Exact (float.hex) Eq. 3/4/8/9 cost terms for Table-1 AlexNet, "
            "B=2048, Cori-KNL, across five grids of P=512"
        ),
        "network": network.name,
        "machine": machine.name,
        "batch": BATCH,
        "alpha": machine.alpha.hex(),
        "beta_per_byte": machine.beta_per_byte.hex(),
        "cases": cases,
    }


if __name__ == "__main__":
    golden = build_golden()
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        json.dump(golden, fh, indent=1)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH} ({len(golden['cases'])} cases)")
