"""Tests for the epoch-time table and compute models (repro.machine.compute)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.machine.compute import ComputeModel, EpochTimeTable, FlopsComputeModel
from repro.machine.knl_data import IMAGENET_TRAIN_IMAGES, KNL_ALEXNET_EPOCH_TABLE


class TestEpochTimeTable:
    def test_exact_at_table_points(self):
        t = EpochTimeTable.knl_alexnet()
        for b, secs in KNL_ALEXNET_EPOCH_TABLE.items():
            assert t.epoch_time(b) == pytest.approx(secs)

    def test_loglog_interpolation_between_points(self):
        t = EpochTimeTable({1: 100.0, 4: 25.0})
        # log-log linear between (1,100) and (4,25): at b=2, 50.
        assert t.epoch_time(2) == pytest.approx(50.0)

    def test_clamps_outside_range(self):
        t = EpochTimeTable({2: 10.0, 8: 5.0})
        assert t.epoch_time(1) == pytest.approx(10.0)
        assert t.epoch_time(100) == pytest.approx(5.0)

    def test_iteration_time_definition(self):
        t = EpochTimeTable({256: 3400.0}, dataset_size=IMAGENET_TRAIN_IMAGES)
        assert t.iteration_time(256) == pytest.approx(3400.0 * 256 / 1_200_000)

    def test_best_batch_is_256(self):
        assert EpochTimeTable.knl_alexnet().best_batch() == 256

    def test_fig4_shape_monotone_then_minimum(self):
        """The published Fig. 4 shape: falls to B=256, rises after."""
        t = EpochTimeTable.knl_alexnet()
        batches = t.batch_sizes
        below = [b for b in batches if b <= 256]
        above = [b for b in batches if b >= 256]
        for b0, b1 in zip(below, below[1:]):
            assert t.epoch_time(b0) > t.epoch_time(b1)
        for b0, b1 in zip(above, above[1:]):
            assert t.epoch_time(b0) < t.epoch_time(b1)

    @pytest.mark.parametrize(
        "entries,kwargs",
        [
            ({}, {}),
            ({0: 1.0}, {}),
            ({1: -1.0}, {}),
            ({1: 1.0}, {"dataset_size": 0}),
            ([(1, 1.0), (1, 2.0)], {}),
        ],
    )
    def test_invalid_tables(self, entries, kwargs):
        with pytest.raises(ConfigurationError):
            EpochTimeTable(entries, **kwargs)

    def test_rejects_nonpositive_batch_query(self):
        with pytest.raises(ConfigurationError):
            EpochTimeTable.knl_alexnet().epoch_time(0)

    @given(st.floats(min_value=1.0, max_value=4096.0))
    def test_interpolation_within_table_envelope(self, b):
        t = EpochTimeTable.knl_alexnet()
        times = [v for _, v in t.entries]
        eps = 1e-6
        assert min(times) * (1 - eps) <= t.epoch_time(b) <= max(times) * (1 + eps)


class TestComputeModel:
    def test_pure_batch_iteration_time(self):
        cm = ComputeModel.knl_alexnet()
        # B=2048 over Pc=8 -> local batch 256.
        expected = cm.table.iteration_time(256)
        assert cm.iteration_time(2048, pr=1, pc=8) == pytest.approx(expected)

    def test_model_split_divides_work(self):
        cm = ComputeModel.knl_alexnet()
        base = cm.iteration_time(1024, pr=1, pc=4)
        assert cm.iteration_time(1024, pr=4, pc=4) == pytest.approx(base / 4)

    def test_local_batch_clamps_at_one(self):
        cm = ComputeModel.knl_alexnet()
        assert cm.local_batch(4, 16) == 1.0

    def test_share_time_equals_iteration_time_when_b_ge_p(self):
        cm = ComputeModel.knl_alexnet()
        assert cm.share_iteration_time(2048, 512) == pytest.approx(
            cm.table.iteration_time(4)
        )

    def test_share_time_scales_below_one_sample(self):
        """Fig. 10 regime: P > B keeps scaling the per-process share."""
        cm = ComputeModel.knl_alexnet()
        at_b = cm.share_iteration_time(512, 512)
        assert cm.share_iteration_time(512, 1024) == pytest.approx(at_b / 2)
        assert cm.share_iteration_time(512, 4096) == pytest.approx(at_b / 8)

    def test_share_time_monotone_in_p(self):
        cm = ComputeModel.knl_alexnet()
        times = [cm.share_iteration_time(2048, p) for p in (8, 64, 256, 512, 1024)]
        for t0, t1 in zip(times, times[1:]):
            assert t1 < t0

    def test_epoch_time_multiplies_iterations(self):
        cm = ComputeModel.knl_alexnet()
        per_iter = cm.iteration_time(2048, pr=2, pc=8)
        assert cm.epoch_time(2048, pr=2, pc=8) == pytest.approx(
            per_iter * IMAGENET_TRAIN_IMAGES / 2048
        )

    @pytest.mark.parametrize("args", [(0, 1, 1), (256, 0, 1), (256, 1, 0)])
    def test_validation(self, args):
        cm = ComputeModel.knl_alexnet()
        with pytest.raises(ConfigurationError):
            cm.iteration_time(*args)

    def test_share_validation(self):
        cm = ComputeModel.knl_alexnet()
        with pytest.raises(ConfigurationError):
            cm.share_iteration_time(256, 0)


class TestFlopsComputeModel:
    def test_basic_scaling(self):
        fm = FlopsComputeModel(1e9, 1e12, efficiency=lambda b: 0.5)
        # 3 * 1e9 * 64 / (1e12 * 0.5)
        assert fm.iteration_time(64) == pytest.approx(3 * 64 / 500.0)

    def test_model_split(self):
        fm = FlopsComputeModel(1e9, 1e12, efficiency=lambda b: 0.5)
        assert fm.iteration_time(64, pr=4) == pytest.approx(fm.iteration_time(64) / 4)

    def test_default_efficiency_saturates(self):
        fm = FlopsComputeModel(1e9, 1e12)
        assert fm.efficiency(1) < fm.efficiency(64) < fm.efficiency(4096) <= 1.0

    def test_bad_efficiency_rejected(self):
        fm = FlopsComputeModel(1e9, 1e12, efficiency=lambda b: 1.5)
        with pytest.raises(ConfigurationError):
            fm.efficiency(10)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlopsComputeModel(0, 1e12)
        with pytest.raises(ConfigurationError):
            FlopsComputeModel(1e9, 0)
        fm = FlopsComputeModel(1e9, 1e12)
        with pytest.raises(ConfigurationError):
            fm.iteration_time(0)

    def test_calibrated_reproduces_table(self):
        """The calibrated model must hit the table's iteration times."""
        table = EpochTimeTable.knl_alexnet()
        flops = 1.455e9
        fm = FlopsComputeModel.calibrated(table, flops, 6e12)
        for b in table.batch_sizes:
            expected = table.iteration_time(b)
            # Calibration caps efficiency at 1.0; for this table all
            # points stay below the cap, so reproduction is exact.
            assert fm.iteration_time(b) == pytest.approx(expected, rel=1e-9)
