"""Integration tests: 1.5D distributed MLP SGD vs the serial reference.

The paper's synchronous framework 'obeys the sequential consistency of
the original algorithm' — so losses and final weights must agree with
serial SGD to floating-point accuracy on every grid shape, including
non-power-of-two and uneven-partition grids.
"""

import numpy as np
import pytest

from repro.data.synthetic import separable_blobs, synthetic_classification
from repro.dist.train import (
    MLPParams,
    distributed_mlp_train,
    serial_mlp_train,
)
from repro.errors import ConfigurationError, ShapeError

X, Y = synthetic_classification(12, 64, 5, seed=42)
PARAMS = MLPParams.init([12, 16, 10, 5], seed=1)
KW = dict(batch=16, steps=6, lr=0.1, momentum=0.9)
SERIAL_W, SERIAL_L = serial_mlp_train(PARAMS, X, Y, **KW)


class TestMLPParams:
    def test_deterministic_init(self):
        a = MLPParams.init([4, 3, 2], seed=7)
        b = MLPParams.init([4, 3, 2], seed=7)
        for wa, wb in zip(a.weights, b.weights):
            np.testing.assert_array_equal(wa, wb)

    def test_dims_roundtrip(self):
        assert MLPParams.init([4, 3, 2]).dims == (4, 3, 2)

    def test_copy_is_deep(self):
        a = MLPParams.init([4, 2])
        b = a.copy()
        b.weights[0][0, 0] = 99.0
        assert a.weights[0][0, 0] != 99.0

    def test_too_few_dims(self):
        with pytest.raises(ConfigurationError):
            MLPParams.init([4])


class TestSerialTrainer:
    def test_loss_decreases_on_separable_data(self):
        x, y = separable_blobs(8, 128, 4, seed=2)
        params = MLPParams.init([8, 16, 4], seed=3)
        _, losses = serial_mlp_train(params, x, y, batch=32, steps=30, lr=0.2)
        assert losses[-1] < 0.5 * losses[0]

    def test_does_not_mutate_input_params(self):
        before = PARAMS.weights[0].copy()
        serial_mlp_train(PARAMS, X, Y, **KW)
        np.testing.assert_array_equal(PARAMS.weights[0], before)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            serial_mlp_train(PARAMS, X[0], Y, **KW)
        with pytest.raises(ShapeError):
            serial_mlp_train(PARAMS, X, Y[:-1], **KW)
        with pytest.raises(ConfigurationError):
            serial_mlp_train(PARAMS, X, Y, batch=1000, steps=1)


@pytest.mark.parametrize("pr,pc", [(1, 1), (1, 4), (4, 1), (2, 2), (2, 3), (3, 2), (4, 2)])
class TestDistributedMatchesSerial:
    def test_losses_match(self, pr, pc):
        _, losses, _ = distributed_mlp_train(PARAMS, X, Y, pr=pr, pc=pc, **KW)
        np.testing.assert_allclose(losses, SERIAL_L, rtol=1e-10, atol=1e-13)

    def test_weights_match(self, pr, pc):
        weights, _, _ = distributed_mlp_train(PARAMS, X, Y, pr=pr, pc=pc, **KW)
        for got, expected in zip(weights, SERIAL_W.weights):
            np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-11)


class TestDistributedDetails:
    def test_uneven_row_partition(self):
        """d=10 rows over Pr=3 exercises the remainder path."""
        params = MLPParams.init([12, 10, 5], seed=4)
        sw, sl = serial_mlp_train(params, X, Y, batch=16, steps=4, lr=0.05)
        dw, dl, _ = distributed_mlp_train(params, X, Y, pr=3, pc=2, batch=16, steps=4, lr=0.05)
        np.testing.assert_allclose(dl, sl, rtol=1e-10)
        for got, expected in zip(dw, sw.weights):
            np.testing.assert_allclose(got, expected, rtol=1e-9)

    def test_uneven_batch_partition(self):
        """B=18 over Pc=4 gives shards of 5,5,4,4."""
        sw, sl = serial_mlp_train(PARAMS, X, Y, batch=18, steps=3, lr=0.05)
        dw, dl, _ = distributed_mlp_train(PARAMS, X, Y, pr=1, pc=4, batch=18, steps=3, lr=0.05)
        np.testing.assert_allclose(dl, sl, rtol=1e-10)

    def test_simulated_time_positive_for_multi_rank(self):
        _, _, res = distributed_mlp_train(PARAMS, X, Y, pr=2, pc=2, **KW)
        assert res.time > 0

    def test_eq5_regimes_visible_in_simulated_time(self):
        """Eq. 5's two regimes, observed end-to-end: with a large batch
        the activation traffic dominates and batch parallelism is faster;
        with a tiny batch the weight traffic dominates and model
        parallelism is faster."""
        x, y = synthetic_classification(64, 512, 10, seed=8)
        params = MLPParams.init([64, 512, 10], seed=9)
        big = dict(batch=512, steps=2, lr=0.05)
        _, _, res_batch = distributed_mlp_train(params, x, y, pr=1, pc=4, **big)
        _, _, res_model = distributed_mlp_train(params, x, y, pr=4, pc=1, **big)
        assert res_batch.time < res_model.time

        small = dict(batch=4, steps=2, lr=0.05)
        _, _, res_batch_s = distributed_mlp_train(params, x, y, pr=1, pc=4, **small)
        _, _, res_model_s = distributed_mlp_train(params, x, y, pr=4, pc=1, **small)
        assert res_model_s.time < res_batch_s.time
