"""Tests for 1-D block partitioning (repro.dist.partition)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dist.partition import BlockPartition
from repro.errors import PartitionError


class TestBounds:
    def test_even_split(self):
        p = BlockPartition(12, 4)
        assert p.all_bounds() == ((0, 3), (3, 6), (6, 9), (9, 12))

    def test_remainder_goes_to_first_parts(self):
        p = BlockPartition(10, 3)
        assert p.all_bounds() == ((0, 4), (4, 7), (7, 10))

    def test_more_parts_than_items(self):
        p = BlockPartition(2, 4)
        assert [p.size(i) for i in range(4)] == [1, 1, 0, 0]

    def test_out_of_range_part(self):
        with pytest.raises(PartitionError):
            BlockPartition(10, 2).bounds(2)

    @pytest.mark.parametrize("n,parts", [(-1, 2), (4, 0)])
    def test_invalid_construction(self, n, parts):
        with pytest.raises(PartitionError):
            BlockPartition(n, parts)


class TestOwner:
    def test_owner_consistent_with_bounds(self):
        p = BlockPartition(11, 3)
        for i in range(11):
            owner = p.owner(i)
            lo, hi = p.bounds(owner)
            assert lo <= i < hi

    def test_owner_out_of_range(self):
        with pytest.raises(PartitionError):
            BlockPartition(5, 2).owner(5)


class TestTake:
    def test_take_rows(self):
        arr = np.arange(20).reshape(10, 2)
        p = BlockPartition(10, 3)
        np.testing.assert_array_equal(p.take(arr, 0, axis=0), arr[:4])
        np.testing.assert_array_equal(p.take(arr, 2, axis=0), arr[7:])

    def test_take_cols(self):
        arr = np.arange(12).reshape(3, 4)
        p = BlockPartition(4, 2)
        np.testing.assert_array_equal(p.take(arr, 1, axis=1), arr[:, 2:])

    def test_take_shape_mismatch(self):
        with pytest.raises(PartitionError):
            BlockPartition(5, 2).take(np.zeros((4, 4)), 0, axis=0)

    def test_take_is_view(self):
        arr = np.zeros((8, 2))
        block = BlockPartition(8, 2).take(arr, 0, axis=0)
        block[0, 0] = 7.0
        assert arr[0, 0] == 7.0


class TestProperties:
    @given(n=st.integers(0, 500), parts=st.integers(1, 50))
    def test_blocks_cover_and_are_disjoint(self, n, parts):
        p = BlockPartition(n, parts)
        seen = []
        for i in range(parts):
            lo, hi = p.bounds(i)
            assert 0 <= lo <= hi <= n
            seen.extend(range(lo, hi))
        assert seen == list(range(n))

    @given(n=st.integers(1, 500), parts=st.integers(1, 50))
    def test_balanced_within_one(self, n, parts):
        p = BlockPartition(n, parts)
        sizes = [p.size(i) for i in range(parts)]
        assert max(sizes) - min(sizes) <= 1
        assert p.is_balanced

    @given(n=st.integers(1, 100), parts=st.integers(1, 10))
    def test_concatenating_blocks_restores_array(self, n, parts):
        arr = np.arange(n, dtype=float)
        p = BlockPartition(n, parts)
        rebuilt = np.concatenate([p.take(arr, i) for i in range(parts)])
        np.testing.assert_array_equal(rebuilt, arr)
