"""Unit tests for the memoized strategy-search engine (repro.search).

The bit-identity *properties* live in ``tests/test_randomized.py`` and
the frozen numbers in ``tests/test_golden_costs.py``; these tests cover
the machinery: cache bookkeeping and invalidation, vectorized table
construction and validation, deterministic parallel sweeps, the
zero-division guards, and the benchmark record/gate.
"""

import dataclasses

import pytest

from repro.core.optimizer import (
    best_strategy,
    enumerate_grids,
    family_specs,
    optimal_placements,
)
from repro.core.pareto import comm_memory_frontier as serial_frontier
from repro.core.strategy import Placement, ProcessGrid, Strategy
from repro.core.sweep import ScalingPoint
from repro.core.sweep import strong_scaling_curve as serial_strong
from repro.errors import ConfigurationError, StrategyError
from repro.experiments.common import default_setting
from repro.nn.zoo import mlp
from repro.search import SearchEngine
from repro.search.bench import (
    BenchRecord,
    compare_to_baseline,
    run_search_bench,
)
from repro.search.cache import CostCache, compute_key, machine_key
from repro.search.sweeps import (
    comm_memory_frontier,
    machine_sensitivity,
    strong_scaling_curve,
    weak_scaling_curve,
)
from repro.search.tables import family_cost_table, per_layer_cost_table
from repro.telemetry.metrics import MetricsRegistry

SETTING = default_setting()
NET, MACHINE, COMPUTE = SETTING.network, SETTING.machine, SETTING.compute
DATASET = SETTING.dataset.train_images


class TestCostCache:
    def test_hits_and_misses_counted(self):
        cache = CostCache()
        layer = NET.weighted_layers[0]
        grid = ProcessGrid(4, 2)
        first = cache.layer_terms(layer, Placement.MODEL, 64, grid, MACHINE)
        assert cache.stats().misses == 1 and cache.stats().hits == 0
        second = cache.layer_terms(layer, Placement.MODEL, 64, grid, MACHINE)
        assert second == first
        assert cache.stats().hits == 1
        assert cache.stats().hit_rate == 0.5
        assert len(cache) == 1

    def test_machine_key_excludes_cost_irrelevant_fields(self):
        renamed = dataclasses.replace(MACHINE, name="other", flops_peak=1.0)
        assert machine_key(renamed) == machine_key(MACHINE)
        derated = MACHINE.derated(latency_factor=2.0)
        assert machine_key(derated) != machine_key(MACHINE)

    def test_distinct_machines_get_distinct_entries(self):
        cache = CostCache()
        layer = NET.weighted_layers[0]
        grid = ProcessGrid(4, 2)
        a = cache.layer_terms(layer, Placement.MODEL, 64, grid, MACHINE)
        b = cache.layer_terms(
            layer, Placement.MODEL, 64, grid, MACHINE.derated(latency_factor=3.0)
        )
        assert len(cache) == 2
        assert a != b  # the derated machine really produced other costs

    def test_infeasible_combination_raises_and_is_not_cached(self):
        cache = CostCache()
        layer = NET.weighted_layers[0]
        grid = ProcessGrid(1, 4)
        with pytest.raises(StrategyError):
            cache.layer_terms(layer, Placement.BATCH, 2, grid, MACHINE)
        assert len(cache) == 0

    def test_compute_time_memoized(self):
        cache = CostCache()
        t1 = cache.compute_time(COMPUTE, 2048, 512)
        t2 = cache.compute_time(COMPUTE, 2048, 512)
        assert t1 == t2 == COMPUTE.share_iteration_time(2048, 512)
        stats = cache.stats()
        assert stats.compute_entries == 1 and stats.hits == 1

    def test_compute_key_distinguishes_tables(self):
        other = dataclasses.replace(COMPUTE, min_local_batch=2)
        assert compute_key(other) != compute_key(COMPUTE)

    def test_metrics_wiring(self):
        registry = MetricsRegistry()
        cache = CostCache(metrics=registry)
        layer = NET.weighted_layers[0]
        grid = ProcessGrid(4, 2)
        cache.layer_terms(layer, Placement.MODEL, 64, grid, MACHINE)
        cache.layer_terms(layer, Placement.MODEL, 64, grid, MACHINE)
        counter = registry.counter("search.cache")
        assert counter.value(kind="terms", event="miss") == 1
        assert counter.value(kind="terms", event="hit") == 1

    def test_clear_keeps_history(self):
        cache = CostCache()
        cache.compute_time(COMPUTE, 64, 4)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().lookups == 1


class TestGridCostTable:
    def test_matches_serial_breakdown_per_grid(self):
        grids = enumerate_grids(64, batch=512)
        strategy = Strategy.conv_batch_fc_model(NET, grids[0])
        table = family_cost_table(
            NET, 512, grids, MACHINE,
            placements=strategy.placements, compute_time=0.125, iterations=3.0,
        )
        from repro.core.costs import integrated_cost

        for i, grid in enumerate(grids):
            bd = integrated_cost(
                NET, 512, Strategy.conv_batch_fc_model(NET, grid), MACHINE
            )
            assert float(table.comm_total[i]) == bd.total
            assert float(table.comm_latency[i]) == bd.latency
            assert float(table.comm_bandwidth[i]) == bd.bandwidth
            assert float(table.iter_total[i]) == bd.total + 0.125
            assert float(table.epoch_total[i]) == (bd.total + 0.125) * 3.0
        assert len(table) == len(grids)

    def test_argmin_matches_python_min(self):
        grids = enumerate_grids(64, batch=512)
        strategy = Strategy.same_grid_model(NET, grids[0])
        table = family_cost_table(
            NET, 512, grids, MACHINE,
            placements=strategy.placements, compute_time=0.0, iterations=1.0,
        )
        expected = min(range(len(grids)), key=lambda i: table.epoch_total[i])
        assert table.argmin_epoch() == expected

    def test_validation_errors(self):
        grids = enumerate_grids(8, batch=64)
        placements = (Placement.MODEL,) * NET.num_weighted
        with pytest.raises(StrategyError, match="at least one grid"):
            family_cost_table(
                NET, 64, (), MACHINE,
                placements=placements, compute_time=0.0, iterations=1.0,
            )
        with pytest.raises(StrategyError, match="positive"):
            family_cost_table(
                NET, 0, grids, MACHINE,
                placements=placements, compute_time=0.0, iterations=1.0,
            )
        with pytest.raises(StrategyError, match="placements"):
            family_cost_table(
                NET, 64, grids, MACHINE,
                placements=placements[:2], compute_time=0.0, iterations=1.0,
            )
        with pytest.raises(StrategyError, match="one process count"):
            family_cost_table(
                NET, 64, [ProcessGrid(1, 4), ProcessGrid(1, 8)], MACHINE,
                placements=placements, compute_time=0.0, iterations=1.0,
            )
        with pytest.raises(StrategyError, match="cannot be split"):
            family_cost_table(
                NET, 2, [ProcessGrid(1, 8)], MACHINE,
                placements=placements, compute_time=0.0, iterations=1.0,
            )

    def test_domain_on_fc_network_raises_like_serial(self):
        fc_net = mlp([256, 128, 10])
        placements = (Placement.DOMAIN,) * fc_net.num_weighted
        with pytest.raises(StrategyError, match="fully connected"):
            family_cost_table(
                fc_net, 64, enumerate_grids(8, batch=64), MACHINE,
                placements=placements, compute_time=0.0, iterations=1.0,
            )

    def test_per_layer_table_matches_serial_placements(self):
        grids = enumerate_grids(256, batch=2048)
        table, placements = per_layer_cost_table(
            NET, 2048, grids, MACHINE, compute_time=0.0, iterations=1.0
        )
        assert len(placements) == len(grids) == len(table)
        for grid, got in zip(grids, placements):
            expected = optimal_placements(NET, 2048, grid, MACHINE)
            assert Strategy(grid, got) == expected


class TestSearchEngineFamilies:
    def test_family_specs_order(self):
        specs = [name for name, _ in family_specs(NET)]
        assert specs == [
            "same_grid_model", "conv_batch_fc_model",
            "conv_domain_fc_model", "per_layer_optimal",
        ]
        specs = [name for name, _ in family_specs(NET, conv_pure_batch=True)]
        assert specs == ["conv_batch_fc_model", "conv_domain_fc_model"]
        fc_only = mlp([64, 32, 10])
        specs = [name for name, _ in family_specs(fc_only)]
        assert specs == [
            "same_grid_model", "conv_batch_fc_model", "per_layer_optimal"
        ]

    def test_engine_max_pc_and_memory_match_serial(self):
        engine = SearchEngine()
        for kwargs in (
            {"max_pc": 16},
            {"max_memory_elements": 3e8},
            {"max_pc": 8, "max_memory_elements": 6e8, "overlap": True},
        ):
            serial = best_strategy(NET, 2048, 512, MACHINE, COMPUTE, **kwargs)
            cached = engine.best_strategy(NET, 2048, 512, MACHINE, COMPUTE, **kwargs)
            assert serial.strategy == cached.strategy
            assert serial.total_epoch == cached.total_epoch

    def test_engine_infeasible_raises_strategy_error(self):
        engine = SearchEngine()
        with pytest.raises(StrategyError, match="no feasible strategy"):
            engine.best_strategy(
                NET, 2048, 512, MACHINE, COMPUTE, max_memory_elements=1.0
            )

    def test_warm_cache_second_search_mostly_hits(self):
        engine = SearchEngine()
        engine.best_strategy(NET, 2048, 512, MACHINE, COMPUTE)
        before = engine.cache_stats()
        engine.best_strategy(NET, 2048, 512, MACHINE, COMPUTE)
        after = engine.cache_stats()
        assert after.misses == before.misses  # nothing new to compute
        assert after.hits > before.hits


class TestParallelSweeps:
    def test_pool_points_identical_to_serial(self):
        processes = (8, 64, 256)
        serial_points, serial_table = serial_strong(
            NET, 512, processes, MACHINE, COMPUTE, dataset_size=DATASET
        )
        pool_points, pool_table = strong_scaling_curve(
            NET, 512, processes, MACHINE, COMPUTE, dataset_size=DATASET, jobs=2
        )
        assert serial_points == pool_points
        assert serial_table.rows == pool_table.rows

    def test_weak_curve_pool_identical(self):
        pairs = ((8, 64), (32, 256), (128, 1024))
        a, _ = weak_scaling_curve(
            NET, pairs, MACHINE, COMPUTE, dataset_size=DATASET
        )
        b, _ = weak_scaling_curve(
            NET, pairs, MACHINE, COMPUTE, dataset_size=DATASET, jobs=2
        )
        assert a == b

    def test_frontier_pool_identical_to_serial(self):
        f1, t1 = serial_frontier(NET, 512, 64, MACHINE)
        f2, t2 = comm_memory_frontier(NET, 512, 64, MACHINE, jobs=2)
        assert f1 == f2
        assert t1.rows == t2.rows

    def test_sensitivity_order_is_input_order(self):
        machines = [
            MACHINE,
            MACHINE.derated(latency_factor=4.0),
            MACHINE.derated(bandwidth_factor=0.25),
        ]
        points = machine_sensitivity(
            NET, COMPUTE, machines, p=64, batch=512, dataset_size=DATASET, jobs=2
        )
        assert [round(pt.alpha_us, 6) for pt in points] == [
            round(m.alpha * 1e6, 6) for m in machines
        ]
        assert all(pt.speedup is not None and pt.speedup >= 1.0 for pt in points)

    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            strong_scaling_curve(
                NET, 512, (8,), MACHINE, COMPUTE, dataset_size=DATASET, jobs=-1
            )

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            strong_scaling_curve(NET, 512, (), MACHINE, COMPUTE)
        with pytest.raises(ConfigurationError):
            weak_scaling_curve(NET, (), MACHINE, COMPUTE)
        with pytest.raises(ConfigurationError):
            machine_sensitivity(NET, COMPUTE, [], p=8, batch=64)

    def test_domain_errors_propagate_from_pool(self):
        with pytest.raises(StrategyError, match="no feasible strategy"):
            strong_scaling_curve(
                NET, 512, (8, 16), MACHINE, COMPUTE, dataset_size=DATASET,
                jobs=2, max_memory_elements=1.0,
            )


class TestScalingPointGuards:
    def test_zero_best_total_speedup_is_none(self):
        point = ScalingPoint(
            processes=1, batch=32, best_label="1x1 all-model",
            best_total_s=0.0, pure_batch_total_s=0.0,
        )
        assert point.speedup_vs_pure_batch is None

    def test_zero_best_total_efficiency_is_none(self):
        base = ScalingPoint(
            processes=1, batch=32, best_label="1x1", best_total_s=1.0,
            pure_batch_total_s=1.0,
        )
        degenerate = ScalingPoint(
            processes=4, batch=32, best_label="2x2", best_total_s=0.0,
            pure_batch_total_s=None,
        )
        assert degenerate.parallel_efficiency(base) is None
        assert degenerate.speedup_vs_pure_batch is None

    def test_degenerate_points_render_none_in_tables(self):
        """Table builders must report None ratios for zero-time points
        instead of dividing by zero."""
        from repro.core.sweep import strong_scaling_table, weak_scaling_table

        degenerate = ScalingPoint(
            processes=1, batch=32, best_label="1x1 all-model",
            best_total_s=0.0, pure_batch_total_s=0.0,
        )
        table = strong_scaling_table(mlp([64, 32, 10]), 32, [degenerate])
        assert table.rows[0]["speedup_vs_batch"] is None
        assert table.rows[0]["parallel_efficiency"] is None
        weak = weak_scaling_table(mlp([64, 32, 10]), [degenerate])
        assert weak.rows[0]["speedup_vs_batch"] is None

    def test_normal_points_unaffected(self):
        points, table = serial_strong(
            NET, 512, (8, 64), MACHINE, COMPUTE, dataset_size=DATASET
        )
        assert points[0].speedup_vs_pure_batch > 0
        assert table.rows[0]["parallel_efficiency"] == 1.0


class TestBench:
    def test_record_roundtrip(self):
        record = BenchRecord(
            network="AlexNet", batch=2048.0, processes=(8, 64),
            dataset_size=1000, repeat=2, serial_s=1.0, engine_s=0.2,
            identical=True, cache_hits=10, cache_misses=5, cache_entries=5,
        )
        assert record.speedup == 5.0
        parsed = BenchRecord.from_json(record.to_json())
        assert parsed == record

    def test_malformed_records_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid bench record"):
            BenchRecord.from_json("not json")
        with pytest.raises(ConfigurationError, match="schema"):
            BenchRecord.from_json('{"schema": "wrong/v0"}')
        with pytest.raises(ConfigurationError, match="malformed"):
            BenchRecord.from_json(
                '{"schema": "repro.search.bench/v1", "config": {}}'
            )

    def test_run_search_bench_small_config(self):
        record = run_search_bench(processes=(4, 8), batch=64, repeat=1)
        assert record.identical
        assert record.processes == (4, 8)
        assert record.serial_s > 0 and record.engine_s > 0
        assert record.cache_entries > 0

    def test_run_search_bench_validation(self):
        with pytest.raises(ConfigurationError):
            run_search_bench(repeat=0)
        with pytest.raises(ConfigurationError):
            run_search_bench(processes=())

    def _record(self, **overrides):
        base = dict(
            network="AlexNet", batch=2048.0, processes=(8, 64, 256, 512),
            dataset_size=1200000, repeat=3, serial_s=1.0, engine_s=0.2,
            identical=True, cache_hits=1, cache_misses=1, cache_entries=1,
        )
        base.update(overrides)
        return BenchRecord(**base)

    def test_gate_passes_when_no_regression(self):
        assert compare_to_baseline(self._record(), self._record()) == []

    def test_gate_fails_below_floor(self):
        slow = self._record(engine_s=0.5)  # 2x < 3x floor
        failures = compare_to_baseline(slow, self._record(engine_s=0.5))
        assert any("floor" in f for f in failures)

    def test_gate_fails_on_regression_vs_baseline(self):
        baseline = self._record(engine_s=0.1)  # 10x
        measured = self._record(engine_s=0.25)  # 4x: >20% below 10x
        failures = compare_to_baseline(measured, baseline)
        assert any("regressed" in f for f in failures)

    def test_gate_fails_when_not_identical(self):
        failures = compare_to_baseline(
            self._record(identical=False), self._record()
        )
        assert any("bit-identical" in f for f in failures)

    def test_gate_config_mismatch_raises(self):
        with pytest.raises(ConfigurationError, match="configs differ"):
            compare_to_baseline(
                self._record(), self._record(processes=(4, 8))
            )

    def test_gate_tolerance_validated(self):
        with pytest.raises(ConfigurationError, match="tolerance"):
            compare_to_baseline(self._record(), self._record(), tolerance=1.5)
