"""Tests for batch schedules and the trainer schedule/lr-schedule hooks."""

import numpy as np
import pytest

from repro.data.batches import (
    CyclicSchedule,
    ShuffledSchedule,
    WithReplacementSchedule,
)
from repro.data.synthetic import synthetic_classification
from repro.dist.train import MLPParams, distributed_mlp_train, serial_mlp_train
from repro.errors import ConfigurationError


class TestCyclic:
    def test_matches_default_window(self):
        s = CyclicSchedule(10, 4)
        np.testing.assert_array_equal(s.columns(0), [0, 1, 2, 3])
        np.testing.assert_array_equal(s.columns(2), [8, 9, 0, 1])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CyclicSchedule(0, 1)
        with pytest.raises(ConfigurationError):
            CyclicSchedule(4, 5)


class TestShuffled:
    def test_epoch_covers_dataset_without_replacement(self):
        s = ShuffledSchedule(12, 4, seed=3)
        epoch0 = np.concatenate([s.columns(t) for t in range(3)])
        assert sorted(epoch0) == list(range(12))

    def test_epochs_differ(self):
        s = ShuffledSchedule(12, 4, seed=3)
        epoch0 = np.concatenate([s.columns(t) for t in range(3)])
        epoch1 = np.concatenate([s.columns(t) for t in range(3, 6)])
        assert not np.array_equal(epoch0, epoch1)

    def test_deterministic_across_instances(self):
        """Every rank reconstructing the schedule gets identical batches —
        the property the distributed trainers rely on."""
        a = ShuffledSchedule(20, 5, seed=7)
        b = ShuffledSchedule(20, 5, seed=7)
        for t in (0, 3, 4, 11):
            np.testing.assert_array_equal(a.columns(t), b.columns(t))

    def test_random_access_not_just_sequential(self):
        s = ShuffledSchedule(12, 4, seed=3)
        late = s.columns(5).copy()
        s2 = ShuffledSchedule(12, 4, seed=3)
        for t in range(6):
            s2.columns(t)
        np.testing.assert_array_equal(late, s2.columns(5))


class TestWithReplacement:
    def test_deterministic_per_step(self):
        a = WithReplacementSchedule(100, 8, seed=1)
        b = WithReplacementSchedule(100, 8, seed=1)
        np.testing.assert_array_equal(a.columns(9), b.columns(9))

    def test_steps_independent(self):
        s = WithReplacementSchedule(100, 8, seed=1)
        assert not np.array_equal(s.columns(0), s.columns(1))

    def test_in_range(self):
        s = WithReplacementSchedule(10, 10, seed=0)
        cols = s.columns(0)
        assert cols.min() >= 0 and cols.max() < 10

    def test_batch_larger_than_dataset_rejected(self):
        with pytest.raises(ConfigurationError):
            WithReplacementSchedule(10, 50, seed=0)


class TestTrainerIntegration:
    X, Y = synthetic_classification(10, 48, 4, seed=9)
    PARAMS = MLPParams.init([10, 12, 4], seed=2)

    def test_shuffled_schedule_serial_vs_distributed(self):
        kw = dict(batch=12, steps=6, lr=0.1)
        sched = lambda: ShuffledSchedule(48, 12, seed=5)
        sw, sl = serial_mlp_train(self.PARAMS, self.X, self.Y, schedule=sched(), **kw)
        dw, dl, _ = distributed_mlp_train(
            self.PARAMS, self.X, self.Y, pr=2, pc=2, schedule=sched(), **kw
        )
        np.testing.assert_allclose(dl, sl, rtol=1e-10)
        for got, expected in zip(dw, sw.weights):
            np.testing.assert_allclose(got, expected, rtol=1e-9)

    def test_lr_schedule_serial_vs_distributed(self):
        decay = lambda step: 0.2 / (1 + step)
        kw = dict(batch=12, steps=5, lr=0.2, lr_schedule=decay)
        sw, sl = serial_mlp_train(self.PARAMS, self.X, self.Y, **kw)
        dw, dl, _ = distributed_mlp_train(
            self.PARAMS, self.X, self.Y, pr=2, pc=2, **kw
        )
        np.testing.assert_allclose(dl, sl, rtol=1e-10)
        for got, expected in zip(dw, sw.weights):
            np.testing.assert_allclose(got, expected, rtol=1e-9)

    def test_lr_schedule_changes_trajectory(self):
        _, constant = serial_mlp_train(
            self.PARAMS, self.X, self.Y, batch=12, steps=5, lr=0.2
        )
        _, decayed = serial_mlp_train(
            self.PARAMS, self.X, self.Y, batch=12, steps=5, lr=0.2,
            lr_schedule=lambda s: 0.2 / (1 + s),
        )
        assert constant[0] == pytest.approx(decayed[0])  # same first batch
        # From step 2 on, the decayed run has taken smaller updates.
        assert abs(constant[3] - decayed[3]) > 1e-6

    def test_cnn_weight_decay_and_schedule(self):
        from repro.data.synthetic import synthetic_images
        from repro.dist.integrated import (
            CNNParams,
            IntegratedCNNConfig,
            distributed_cnn_train,
            serial_cnn_train,
        )

        cfg = IntegratedCNNConfig(
            in_channels=1, height=8, width=8,
            conv_channels=(3,), conv_kernels=(3,), pool_after=(True,),
            fc_dims=(10, 3),
        )
        x, y = synthetic_images(16, 1, 8, 8, 3, seed=4)
        params = CNNParams.init(cfg, seed=5)
        kw = dict(
            batch=8, steps=4, lr=0.1, weight_decay=0.01,
            schedule=None, lr_schedule=lambda s: 0.1 * 0.5**s,
        )
        sp, sl = serial_cnn_train(cfg, params, x, y, **kw)
        dp, dl, _ = distributed_cnn_train(cfg, params, x, y, pr=2, pc=2, **kw)
        np.testing.assert_allclose(dl, sl, rtol=1e-9)
        for got, expected in zip(dp.all_params(), sp.all_params()):
            np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-10)

    def test_switching_trainer_with_shuffle(self):
        from repro.dist.switching import distributed_switching_mlp_train

        sched = lambda: ShuffledSchedule(48, 12, seed=6)
        sw, sl = serial_mlp_train(
            self.PARAMS, self.X, self.Y, batch=12, steps=4, lr=0.1, schedule=sched()
        )
        dw, dl, _ = distributed_switching_mlp_train(
            self.PARAMS, self.X, self.Y, placements=["batch", "model"],
            pr=2, pc=2, batch=12, steps=4, lr=0.1, schedule=sched(),
        )
        np.testing.assert_allclose(dl, sl, rtol=1e-10)
        for got, expected in zip(dw, sw.weights):
            np.testing.assert_allclose(got, expected, rtol=1e-9)
