"""Unit tests for the Reed-Solomon checkpoint codec and shard census.

The elastic trainer's multi-failure guarantee rests on three properties
proved here in isolation: GF(256) is a field, any ``k`` of the ``k + r``
chunks reconstruct a stripe bit-exactly, and the census always finds the
newest recoverable step (degrading, never silently guessing).
"""

import itertools

import numpy as np
import pytest

from repro.dist.erasure import (
    CENSUS_FIELDS,
    MODE_ERASURE,
    MODE_REPLICATE,
    ShardMeta,
    ShardStore,
    block_state_bytes,
    census_choose,
    chunk_bytes,
    decode_stripe,
    encode_chunk,
    encode_stripe,
    gf_inv,
    gf_matmul,
    gf_mul,
    pack_block_state,
    rs_generator_matrix,
    state_bytes,
    unpack_block_state,
)
from repro.errors import ConfigurationError


class TestGF256:
    def test_multiplicative_inverse(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_mul_matches_reference_polynomial_arithmetic(self):
        def ref_mul(a, b):
            out = 0
            while b:
                if b & 1:
                    out ^= a
                a <<= 1
                if a & 0x100:
                    a ^= 0x11D
                b >>= 1
            return out

        rng = np.random.default_rng(0)
        for a, b in rng.integers(0, 256, (200, 2)):
            assert gf_mul(int(a), int(b)) == ref_mul(int(a), int(b))

    def test_mul_identity_and_zero(self):
        for a in range(256):
            assert gf_mul(a, 1) == a
            assert gf_mul(a, 0) == 0

    def test_zero_has_no_inverse(self):
        with pytest.raises(ConfigurationError):
            gf_inv(0)

    def test_matmul_shape_validation(self):
        with pytest.raises(ConfigurationError):
            gf_matmul(
                np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8)
            )


class TestGeneratorMatrix:
    def test_systematic_prefix_is_identity(self):
        for k, r in [(1, 1), (2, 1), (3, 2), (5, 3)]:
            gen = rs_generator_matrix(k, r)
            assert gen.shape == (k + r, k)
            np.testing.assert_array_equal(gen[:k], np.eye(k, dtype=np.uint8))

    def test_any_k_rows_invertible(self):
        k, r = 3, 3
        gen = rs_generator_matrix(k, r)
        for rows in itertools.combinations(range(k + r), k):
            sub = gen[list(rows)]
            # A singular submatrix would raise inside the inverse; the
            # MDS property says every k-subset is a basis.
            prod = gf_matmul(sub, np.eye(k, dtype=np.uint8))
            np.testing.assert_array_equal(prod, sub)
            decode_stripe(
                {i: sub[j] for j, i in enumerate(rows)}, k, r, k
            )  # must not raise

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rs_generator_matrix(0, 1)
        with pytest.raises(ConfigurationError):
            rs_generator_matrix(2, -1)
        with pytest.raises(ConfigurationError):
            rs_generator_matrix(200, 100)

    def test_cached_matrix_is_immutable(self):
        gen = rs_generator_matrix(2, 1)
        with pytest.raises(ValueError):
            gen[0, 0] = 7


class TestStripeCodec:
    @pytest.mark.parametrize("k,r", [(1, 1), (2, 1), (3, 2), (4, 2)])
    def test_roundtrip_over_every_loss_pattern(self, k, r):
        rng = np.random.default_rng(k * 10 + r)
        payload = rng.integers(0, 256, 37, dtype=np.uint8).view(np.uint8)
        chunks = encode_stripe(payload, k, r)
        assert len(chunks) == k + r
        for kept in itertools.combinations(range(k + r), k):
            out = decode_stripe(
                {i: chunks[i] for i in kept}, k, r, payload.nbytes
            )
            assert out.tobytes() == payload.tobytes()

    def test_encode_chunk_matches_encode_stripe(self):
        rng = np.random.default_rng(7)
        payload = rng.integers(0, 256, 50, dtype=np.uint8)
        k, r = 3, 2
        chunks = encode_stripe(payload, k, r)
        for i in range(k + r):
            np.testing.assert_array_equal(
                encode_chunk(payload, k, r, i), chunks[i]
            )
        with pytest.raises(ConfigurationError):
            encode_chunk(payload, k, r, k + r)

    def test_decode_needs_k_chunks(self):
        payload = np.arange(10, dtype=np.uint8)
        chunks = encode_stripe(payload, 2, 1)
        with pytest.raises(ConfigurationError):
            decode_stripe({0: chunks[0]}, 2, 1, 10)

    def test_float64_payload_bit_exact(self):
        rng = np.random.default_rng(3)
        state = rng.standard_normal(33)
        raw = np.frombuffer(state.tobytes(), dtype=np.uint8)
        chunks = encode_stripe(raw, 3, 1)
        out = decode_stripe({1: chunks[1], 2: chunks[2], 3: chunks[3]}, 3, 1, raw.nbytes)
        assert np.frombuffer(out.tobytes(), dtype=np.float64).tobytes() == state.tobytes()


class TestGeometry:
    def test_chunk_bytes_covers_widest_row(self):
        dims, pr, k = (8, 10, 6), 2, 3
        widest = max(block_state_bytes(dims, pr, row) for row in range(pr))
        assert chunk_bytes(dims, pr, k) == -(-widest // k)
        assert chunk_bytes(dims, pr, k) * k >= widest

    def test_momentum_doubles_state(self):
        dims = (8, 10, 6)
        assert state_bytes(dims, momentum=True) == 2 * state_bytes(dims)
        assert block_state_bytes(dims, 2, 0, momentum=True) == 2 * block_state_bytes(
            dims, 2, 0
        )

    def test_pack_unpack_roundtrip(self):
        dims, pr = (6, 8, 5), 2
        rng = np.random.default_rng(5)
        for row in range(pr):
            from repro.dist.partition import BlockPartition

            shapes = [
                (BlockPartition(dims[i + 1], pr).size(row), dims[i])
                for i in range(len(dims) - 1)
            ]
            w = [rng.standard_normal(s) for s in shapes]
            v = [rng.standard_normal(s) for s in shapes]
            buf = pack_block_state(w, v)
            assert buf.nbytes == block_state_bytes(dims, pr, row, momentum=True)
            w2, v2 = unpack_block_state(buf, dims, pr, row, momentum=True)
            for a, b in zip(w + v, w2 + v2):
                assert a.tobytes() == b.tobytes()
            w3, v3 = unpack_block_state(
                pack_block_state(w, None), dims, pr, row
            )
            assert v3 is None
            for a, b in zip(w, w3):
                assert a.tobytes() == b.tobytes()


class _FakeCheckpoint:
    def __init__(self, nbytes):
        self.step = 0
        self.weights = [np.zeros(nbytes // 8)]
        self.velocity = None
        self.losses = ()


class TestShardStore:
    def _meta(self, step, row=0, col=0, pr=2, pc=4, k=3, r=1):
        return ShardMeta(step, row, col, pr, pc, k, r, 0)

    def test_steps_descriptors_and_bytes(self):
        store = ShardStore()
        store.add_replica(0, _FakeCheckpoint(80))
        chunk = np.arange(16, dtype=np.uint8)
        store.add_shard(2, self._meta(2, row=1, col=3), chunk, (0.5,))
        assert store.steps() == [0, 2]
        descs = store.descriptors()
        assert all(len(d) == CENSUS_FIELDS for d in descs)
        assert descs[0] == (0, MODE_REPLICATE, 0, 0, 0, 0, 0, 0)
        assert descs[1] == (2, MODE_ERASURE, 1, 3, 2, 4, 3, 1)
        assert store.stored_bytes() == 80 + 16

    def test_truncate_drops_newer_holdings(self):
        store = ShardStore()
        store.add_replica(0, _FakeCheckpoint(8))
        store.add_shard(2, self._meta(2), np.zeros(4, dtype=np.uint8), ())
        store.add_shard(4, self._meta(4), np.zeros(4, dtype=np.uint8), ())
        store.truncate(2)
        assert store.steps() == [0, 2]
        assert store.get(4) is None


class TestCensusChoose:
    def _shard_desc(self, step, row, col, pr=2, pc=4, k=3, r=1):
        return (step, MODE_ERASURE, row, col, pr, pc, k, r)

    def _replica(self, step):
        return (step, MODE_REPLICATE, 0, 0, 0, 0, 0, 0)

    def test_replica_needs_every_survivor(self):
        descs = [[self._replica(0), self._replica(4)], [self._replica(0)]]
        chosen, newest, geometry = census_choose(descs)
        assert (chosen, newest, geometry) == (0, 4, None)

    def test_erasure_k_of_n_recoverable(self):
        # 2x4 grid, k=3: rank (0,1) lost, each stripe keeps 3 chunks.
        descs = []
        for row in range(2):
            for col in range(4):
                if (row, col) == (0, 1):
                    continue
                descs.append([self._replica(0), self._shard_desc(4, row, col)])
        chosen, newest, geometry = census_choose(descs)
        assert (chosen, newest) == (4, 4)
        assert geometry == (2, 4, 3, 1)

    def test_degrades_past_short_stripe(self):
        # Rank (0,1) is lost; survivor (0,2) additionally truncated its
        # step-4 shard.  Row 0 then has 3 >= k step-2 chunks but only 2
        # step-4 chunks: the census must skip step 4 and pick step 2.
        descs = []
        for row in range(2):
            for col in range(4):
                if (row, col) == (0, 1):
                    continue
                held = [self._replica(0), self._shard_desc(2, row, col)]
                if (row, col) != (0, 2):
                    held.append(self._shard_desc(4, row, col))
                descs.append(held)
        chosen, newest, geometry = census_choose(descs)
        assert chosen == 2 and newest == 4
        assert geometry == (2, 4, 3, 1)

    def test_step0_replica_is_last_resort(self):
        descs = [[self._replica(0), self._shard_desc(4, 0, 0)]]
        chosen, newest, geometry = census_choose(descs)
        assert (chosen, newest, geometry) == (0, 4, None)

    def test_empty_census_raises(self):
        with pytest.raises(ConfigurationError):
            census_choose([[], []])
