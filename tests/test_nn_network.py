"""Tests for NetworkSpec shape threading and the named network factories."""

import pytest

from repro.errors import ConfigurationError
from repro.nn import (
    ActivationSpec,
    ConvSpec,
    FCSpec,
    NetworkSpec,
    PoolSpec,
    Shape3D,
    alexnet,
    lenet_like,
    mlp,
    resnet_like_stack,
    vgg16,
)
from repro.nn.alexnet import ALEXNET_PARAMS


class TestNetworkSpec:
    def make_tiny(self):
        return NetworkSpec(
            "tiny",
            Shape3D(8, 8, 3),
            [
                ("c1", ConvSpec.square(4, 3, padding=1)),
                ("r1", ActivationSpec()),
                ("p1", PoolSpec(kernel=2, stride=2)),
                ("f1", FCSpec(10)),
            ],
        )

    def test_threads_shapes(self):
        net = self.make_tiny()
        assert net["c1"].out_shape == Shape3D(8, 8, 4)
        assert net["p1"].out_shape == Shape3D(4, 4, 4)
        assert net.output_shape == Shape3D.flat(10)

    def test_auto_flatten_before_fc(self):
        net = self.make_tiny()
        assert net["f1.flatten"].out_shape == Shape3D.flat(64)
        assert net["f1"].in_shape == Shape3D.flat(64)

    def test_weighted_layers_view(self):
        net = self.make_tiny()
        w = net.weighted_layers
        assert [x.name for x in w] == ["c1", "f1"]
        assert w[0].index == 1 and w[1].index == 2
        # FC d_in reflects the post-pool, flattened activation.
        assert w[1].d_in == 64

    def test_fc_kernel_is_whole_input(self):
        """Paper Sec. 2.4: for FC layers k_h = X_H, k_w = X_W."""
        net = self.make_tiny()
        fc = net.weighted_layers[1]
        assert (fc.kernel_h, fc.kernel_w) == (1, 1)  # flat input 1x1x64
        conv = net.weighted_layers[0]
        assert (conv.kernel_h, conv.kernel_w) == (3, 3)

    def test_activation_sizes_chain(self):
        net = self.make_tiny()
        assert net.activation_sizes() == (8 * 8 * 3, 8 * 8 * 4, 10)

    def test_total_params(self):
        net = self.make_tiny()
        assert net.total_params == 3 * 3 * 3 * 4 + 64 * 10

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkSpec("dup", Shape3D.flat(4), [("a", FCSpec(3)), ("a", FCSpec(2))])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkSpec("empty", Shape3D.flat(4), [])

    def test_no_weighted_layers_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkSpec("actonly", Shape3D.flat(4), [ActivationSpec()])

    def test_auto_naming(self):
        net = NetworkSpec("auto", Shape3D.flat(4), [FCSpec(3), ActivationSpec(), FCSpec(2)])
        assert [b.name for b in net] == ["fc1", "activation1", "fc2"]

    def test_getitem_by_index_and_name(self):
        net = self.make_tiny()
        assert net[0].name == "c1"
        assert net["c1"] is net[0]
        with pytest.raises(KeyError):
            net["nope"]

    def test_summary_contains_every_layer(self):
        text = self.make_tiny().summary()
        for name in ("c1", "r1", "p1", "f1"):
            assert name in text


class TestAlexNet:
    def test_exact_parameter_count(self):
        net = alexnet()
        assert net.total_params == ALEXNET_PARAMS == 60_954_656

    def test_layer_structure(self):
        net = alexnet()
        assert len(net.conv_layers) == 5
        assert len(net.fc_layers) == 3

    @pytest.mark.parametrize(
        "layer,params,out",
        [
            ("conv1", 34_848, Shape3D(55, 55, 96)),
            ("conv2", 307_200, Shape3D(27, 27, 256)),
            ("conv3", 884_736, Shape3D(13, 13, 384)),
            ("conv4", 663_552, Shape3D(13, 13, 384)),
            ("conv5", 442_368, Shape3D(13, 13, 256)),
            ("fc6", 37_748_736, Shape3D.flat(4096)),
            ("fc7", 16_777_216, Shape3D.flat(4096)),
            ("fc8", 4_096_000, Shape3D.flat(1000)),
        ],
    )
    def test_per_layer(self, layer, params, out):
        net = alexnet()
        assert net[layer].params == params
        assert net[layer].out_shape == out

    def test_ungrouped_variant_is_larger(self):
        assert alexnet(grouped=False).total_params == 62_367_776

    def test_conv4_is_the_eq5_example(self):
        """Sec. 2.2: '3x3 filters on 13x13x384 activations' is conv4."""
        w4 = next(w for w in alexnet().weighted_layers if w.name == "conv4")
        assert w4.in_shape == Shape3D(13, 13, 384)
        assert (w4.kernel_h, w4.kernel_w) == (3, 3)

    def test_flops_in_known_range(self):
        # AlexNet forward is famously ~1.4-1.5 Gflop per image.
        assert 1.3e9 < alexnet().total_flops < 1.6e9


class TestZoo:
    def test_vgg16_parameter_count(self):
        # Canonical VGG-16 conv+fc weight count (no biases): 138.3M.
        assert vgg16().total_params == 138_344_128

    def test_vgg16_structure(self):
        net = vgg16()
        assert len(net.conv_layers) == 13
        assert len(net.fc_layers) == 3

    def test_resnet_like_is_mostly_pointwise(self):
        net = resnet_like_stack(blocks=3)
        pointwise = [w for w in net.conv_layers if w.is_pointwise]
        assert len(pointwise) == 6  # two 1x1 per bottleneck

    def test_resnet_like_validation(self):
        with pytest.raises(ConfigurationError):
            resnet_like_stack(blocks=0)

    def test_mlp_dims(self):
        net = mlp([784, 300, 100, 10])
        assert [w.weights for w in net.weighted_layers] == [
            784 * 300,
            300 * 100,
            100 * 10,
        ]

    def test_mlp_validation(self):
        with pytest.raises(ConfigurationError):
            mlp([10])

    def test_lenet_like_runs(self):
        net = lenet_like()
        assert net.output_shape == Shape3D.flat(10)
        assert net.num_weighted == 4
