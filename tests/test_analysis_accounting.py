"""Tests for per-rank virtual-time accounting (repro.analysis.accounting)."""

import numpy as np
import pytest

from repro.analysis import AccountingReport, RankAccount, rank_accounting, span_accounting
from repro.dist.train import MLPParams, distributed_mlp_train
from repro.errors import ConfigurationError
from repro.simmpi.engine import SimEngine
from repro.simmpi.tracing import TraceEvent


def _p2p(rank, op, peer, t0, t1, span=()):
    return TraceEvent(
        rank=rank, op=op, peer=peer, nbytes=8, t_start=t0, t_end=t1, span=span
    )


HAND_EVENTS = (
    _p2p(0, "send", 1, 0.0, 1.0),
    _p2p(0, "recv", 1, 1.0, 3.0),
    _p2p(1, "recv", 0, 0.0, 2.0),
    _p2p(1, "send", 0, 2.0, 3.0),
)


def _traced_mlp(pr=2, pc=2, batch=8, steps=2, dims=(12, 9, 5)):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((dims[0], 4 * batch))
    y = rng.integers(0, dims[-1], 4 * batch)
    engine = SimEngine(pr * pc, trace=True)
    _, _, sim = distributed_mlp_train(
        MLPParams.init(dims, seed=0), x, y,
        pr=pr, pc=pc, batch=batch, steps=steps, engine=engine,
    )
    return engine, sim


class TestHandTrace:
    def test_exact_decomposition_without_clocks(self):
        report = rank_accounting(HAND_EVENTS)
        a0, a1 = report.account(0), report.account(1)
        assert a0 == RankAccount(0, 3.0, 0.0, 1.0, 2.0, sends=1, recvs=1)
        assert a1.comm_s == 1.0 and a1.wait_s == 2.0 and a1.compute_s == 0.0
        assert report.makespan_s == 3.0

    def test_clocks_pin_trailing_compute(self):
        report = rank_accounting(HAND_EVENTS, clocks=(4.0, 3.0))
        assert report.account(0).compute_s == pytest.approx(1.0)
        assert report.account(0).wall_s == 4.0
        assert report.makespan_s == 4.0
        assert report.straggler_rank == 0

    def test_clocks_surface_silent_ranks(self):
        report = rank_accounting(HAND_EVENTS, clocks=(3.0, 3.0, 0.5))
        silent = report.account(2)
        assert silent.sends == silent.recvs == 0
        assert silent.compute_s == pytest.approx(0.5)

    def test_idle_fraction_counts_wait_and_tail(self):
        report = rank_accounting(HAND_EVENTS, clocks=(4.0, 3.0))
        # rank 0: wait 2.0; rank 1: wait 2.0 + tail (4.0 - 3.0).
        assert report.idle_fraction == pytest.approx((2.0 + 3.0) / (2 * 4.0))

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            rank_accounting([])

    def test_dropped_warning_in_title(self):
        report = rank_accounting(HAND_EVENTS, dropped=7)
        assert "7 events dropped" in report.to_table().title
        assert "lower bounds" in report.to_table().title
        clean = rank_accounting(HAND_EVENTS)
        assert "dropped" not in clean.to_table().title


class TestTracedRun:
    def test_decomposition_identity_every_rank(self):
        engine, sim = _traced_mlp()
        report = rank_accounting(engine.tracer.canonical(), clocks=sim.clocks)
        for a in report.accounts:
            assert a.compute_s + a.comm_s + a.wait_s == pytest.approx(
                a.wall_s, abs=1e-12
            )
            assert a.compute_s >= -1e-12
        assert report.makespan_s == pytest.approx(sim.time)

    def test_all_ranks_send_and_receive(self):
        engine, sim = _traced_mlp()
        report = rank_accounting(engine.tracer.canonical(), clocks=sim.clocks)
        assert report.ranks == (0, 1, 2, 3)
        for a in report.accounts:
            assert a.sends > 0 and a.recvs > 0

    def test_imbalance_at_least_one(self):
        engine, sim = _traced_mlp(pr=2, pc=1, dims=(10, 7, 4), batch=6)
        report = rank_accounting(engine.tracer.canonical(), clocks=sim.clocks)
        assert report.imbalance >= 1.0

    def test_group_tables(self):
        engine, sim = _traced_mlp()
        report = rank_accounting(engine.tracer.canonical(), clocks=sim.clocks)
        rows = report.group_table(2, 2, axis="row")
        cols = report.group_table(2, 2, axis="col")
        assert [r["row"] for r in rows.rows] == [0, 1]
        assert [r["col"] for r in cols.rows] == [0, 1]
        assert all(r["ranks"] == 2 for r in rows.rows)

    def test_group_table_validates(self):
        engine, sim = _traced_mlp()
        report = rank_accounting(engine.tracer.canonical(), clocks=sim.clocks)
        with pytest.raises(ConfigurationError):
            report.group_table(2, 2, axis="diag")
        with pytest.raises(ConfigurationError):
            report.group_table(1, 2)  # 4 ranks cannot fit a 1x2 grid


class TestSpanAccounting:
    def test_spans_decomposed(self):
        engine, _ = _traced_mlp()
        table = span_accounting(engine.tracer.canonical())
        names = [r["span"] for r in table.rows]
        assert "step" in names
        assert "fwd" in names

    def test_dropped_stamps_title(self):
        engine, _ = _traced_mlp()
        table = span_accounting(engine.tracer.canonical(), dropped=3)
        assert "3 events dropped" in table.title


class TestReportShape:
    def test_to_table_columns(self):
        report = AccountingReport(
            (RankAccount(0, 1.0, 0.5, 0.3, 0.2, 2, 2),), 1.0
        )
        table = report.to_table()
        assert table.columns[:5] == ("rank", "wall", "compute", "comm", "wait")
        assert len(table.rows) == 1
