"""Property tests for the discrete-event simmpi backend.

Hypothesis drives the scheduler through randomized communication
patterns and checks the invariants the backend's determinism contract
rests on: per-rank virtual time never runs backwards, deadlock
detection still fires on any unmatched receive, and results are
independent of both tasklet spawn order and repetition.  The lock
elision used in single-thread mode (``Tracer(threadsafe=False)``,
``SDCMonitor(single_thread=True)``) is regression-tested for identical
observable output.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DeadlockError, RankFailedError
from repro.simmpi.engine import SimEngine
from repro.simmpi.sdc import SDCMonitor
from repro.simmpi.tracing import NullLock, TraceEvent, Tracer


def _ring_program(comm, rounds, payload):
    """A deterministic mixed point-to-point / collective workload."""
    rank, size = comm.rank, comm.size
    history = []
    for r in range(rounds):
        nxt, prv = (rank + 1) % size, (rank - 1) % size
        comm.send(np.arange(payload, dtype=np.float64) + rank + r, nxt, tag=r)
        got = comm.recv(prv, tag=r)
        history.append(float(got.sum()))
        if r % 2 == 0:
            total = comm.allreduce(np.full(3, float(rank + r)))
            history.append(float(total[0]))
        else:
            comm.barrier()
    return tuple(history)


sizes = st.integers(min_value=1, max_value=7)
rounds = st.integers(min_value=1, max_value=4)


@given(size=sizes, rounds=rounds, payload=st.integers(1, 16))
@settings(max_examples=25, deadline=None)
def test_virtual_time_monotone_per_rank(size, rounds, payload):
    """Each rank's local clock never runs backwards.

    ``t_start`` is the issuing rank's clock when the operation began, so
    per rank it must be non-decreasing in program order.  (``t_end`` of a
    *send* is the future delivery time at the receiver, so it is not
    monotone and is only checked to bound its own ``t_start``.)
    """
    engine = SimEngine(size, backend="event", trace=True)
    result = engine.run(_ring_program, rounds, payload)
    last = [0.0] * size
    for ev in engine.tracer.canonical():
        if ev.rank < 0:
            continue
        if ev.op == "span":
            # span brackets are recorded at *exit* with t_start at entry,
            # so they only bound, rather than advance, the clock walk.
            assert ev.t_end >= ev.t_start
            continue
        assert ev.t_start >= last[ev.rank] - 1e-12, (
            f"rank {ev.rank} time ran backwards: {ev.t_start} < {last[ev.rank]}"
        )
        assert ev.t_end >= ev.t_start
        last[ev.rank] = ev.t_start
    for rank, clock in enumerate(result.clocks):
        assert clock >= last[rank] - 1e-12


@given(size=sizes, rounds=rounds, data=st.data())
@settings(max_examples=25, deadline=None)
def test_deterministic_under_shuffled_spawn_order(size, rounds, data):
    """Tasklet creation order must not leak into any observable output."""
    order = data.draw(st.permutations(range(size)))
    baseline_engine = SimEngine(size, backend="event", trace=True)
    baseline = baseline_engine.run(_ring_program, rounds, 4)
    shuffled_engine = SimEngine(size, backend="event", trace=True)
    shuffled_engine._spawn_order = order
    shuffled = shuffled_engine.run(_ring_program, rounds, 4)
    assert baseline.values == shuffled.values
    assert baseline.clocks == shuffled.clocks
    assert baseline_engine.tracer.canonical() == shuffled_engine.tracer.canonical()


@given(size=sizes, rounds=rounds)
@settings(max_examples=15, deadline=None)
def test_deterministic_under_repetition(size, rounds):
    """Same engine, same program, rerun: bit-identical results and trace."""
    runs, traces = [], []
    for _ in range(2):
        engine = SimEngine(size, backend="event", trace=True)
        runs.append(engine.run(_ring_program, rounds, 4))
        traces.append(engine.tracer.canonical())
    assert runs[0].values == runs[1].values
    assert runs[0].clocks == runs[1].clocks
    assert traces[0] == traces[1]


@given(
    size=st.integers(min_value=2, max_value=6),
    stuck=st.data(),
)
@settings(max_examples=15, deadline=None)
def test_deadlock_detection_fires(size, stuck):
    """Any rank left waiting on a never-sent message is diagnosed."""
    victim = stuck.draw(st.integers(0, size - 1))

    def prog(comm):
        if comm.rank == victim:
            comm.recv(source=(victim + 1) % comm.size, tag=12345)
        return comm.rank

    engine = SimEngine(size, backend="event", timeout=0.5)
    with pytest.raises(RankFailedError) as exc_info:
        engine.run(prog)
    failures = exc_info.value.failures
    assert victim in failures
    assert isinstance(failures[victim], DeadlockError)


def test_event_backend_leaves_no_threads_behind():
    before = threading.active_count()
    engine = SimEngine(6, backend="event")
    engine.run(_ring_program, 3, 4)
    assert threading.active_count() == before


def test_scheduler_switch_counter_advances():
    engine = SimEngine(4, backend="event")
    engine.run(_ring_program, 2, 4)


def test_rejects_unknown_backend():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        SimEngine(2, backend="fibers")


# ---------------------------------------------------------------------------
# lock elision regression: identical observable output
# ---------------------------------------------------------------------------


def _sample_events(n=50):
    return [
        TraceEvent(rank=i % 3, op="send", peer=(i + 1) % 3, nbytes=8 * i,
                   t_start=float(i), t_end=float(i) + 0.5, tag=("t", i))
        for i in range(n)
    ]


def test_tracer_lock_elision_output_unchanged():
    locked = Tracer(enabled=True)
    lockfree = Tracer(enabled=True, threadsafe=False)
    assert isinstance(lockfree._lock, NullLock)
    for ev in _sample_events():
        locked.record(ev)
        lockfree.record(ev)
    assert locked.events == lockfree.events
    assert locked.canonical() == lockfree.canonical()
    assert locked.by_rank() == lockfree.by_rank()
    assert locked.dropped == lockfree.dropped == 0


def test_tracer_lock_elision_with_cap_and_sink():
    seen = []
    locked = Tracer(enabled=True, max_events=10)
    lockfree = Tracer(enabled=True, max_events=10, threadsafe=False,
                      sink=seen.append)
    events = _sample_events(25)
    for ev in events:
        locked.record(ev)
        lockfree.record(ev)
    assert locked.events == lockfree.events
    assert locked.dropped == lockfree.dropped == 15
    assert seen == events  # the sink sees everything, cap or not


def test_sdc_monitor_lock_elision_counts_unchanged():
    locked = SDCMonitor()
    lockfree = SDCMonitor(single_thread=True)
    assert isinstance(lockfree._lock, NullLock)
    for name, times in (("injected", 4), ("detected", 3), ("corrected", 2)):
        for _ in range(times):
            locked.inc(name)
            lockfree.inc(name)
    assert locked.snapshot() == lockfree.snapshot()


def test_traced_run_identical_with_and_without_locks():
    """End-to-end: an event-backend run (lock-free tracer) produces the
    same canonical trace as a threaded run (locked tracer)."""
    results, traces = {}, {}
    for backend in ("thread", "event"):
        engine = SimEngine(3, backend=backend, trace=True)
        results[backend] = engine.run(_ring_program, 2, 4)
        assert engine.tracer.threadsafe == (backend != "event")
        traces[backend] = engine.tracer.canonical()
    assert results["thread"].values == results["event"].values
    assert traces["thread"] == traces["event"]
