"""Edge-case coverage for heartbeats and the rules that consume them.

Three awkward regimes the happy-path suite (``test_observe_health.py``)
never enters:

* **zero-duration epochs** — every heartbeat of a step lands at the
  same virtual instant (tiny problems where compute costs round to
  nothing), so per-step durations are 0 and both the straggler median
  and the comm-wait fraction would divide by zero without their guards;
* **a monitor attached mid-run** — the streaming monitor starts
  consuming a heartbeat stream partway through (``repro watch`` joining
  a run in progress): the first heartbeat seen per rank must establish
  state without fabricating a duration or a spurious alert;
* **dedupe across an elastic shrink** — a ``fault.crash`` renumbers the
  world, so the one-event-per-``(kind, rank)`` dedupe must reset with
  the epoch while still suppressing repeats within one.

Plus the :mod:`repro.telemetry.heartbeat` emitter/decoder edges:
no-op when tracing is disabled, non-heartbeat decode, NaN losses
surviving the tag round trip.
"""

import math

from repro.observe.health import HealthConfig, HealthMonitor, evaluate_health
from repro.simmpi.engine import SimEngine
from repro.simmpi.tracing import TraceEvent
from repro.telemetry.heartbeat import (
    HB_OP,
    emit_heartbeat,
    heartbeat_fields,
    loss_is_bad,
)


def hb(rank, step, t, loss=None, phase="train"):
    attrs = {"step": step, "phase": phase}
    if loss is not None:
        attrs["loss"] = loss
    return TraceEvent(
        rank=rank, op=HB_OP, peer=-1, nbytes=0, t_start=t, t_end=t,
        tag=tuple(sorted(attrs.items())),
    )


def feed(events, config=None):
    monitor = HealthMonitor(config)
    for ev in events:
        monitor.observe_event(ev)
    return monitor.finish()


class TestZeroDurationEpochs:
    def test_all_zero_durations_raise_nothing(self):
        # Every rank reports every step at the same instant: all
        # per-step durations are exactly 0.  The straggler judge must
        # hit its zero-median guard, not divide by zero or flag anyone.
        events = [hb(r, s, 1e-6) for s in range(5) for r in range(3)]
        assert feed(events).events == ()

    def test_zero_duration_step_skips_comm_wait(self):
        # recv time recorded against a zero-duration step: the
        # ``duration > 0`` guard must skip the fraction, not ZeroDivide.
        events = [
            hb(0, 2, 1e-5),
            TraceEvent(rank=0, op="recv", peer=1, nbytes=8,
                       t_start=1e-5, t_end=2e-5),
            hb(0, 3, 1e-5),  # same virtual instant as step 2's beat
        ]
        assert feed(events).counts.get("comm_wait_spike") is None

    def test_one_zero_rank_does_not_mask_real_straggler(self):
        # Median over {0, 1e-5, 3e-5} is positive, so the judge still
        # runs and flags the 3x rank even with a zero-duration rank.
        durs = {0: 0.0, 1: 1e-5, 2: 3e-5}
        events = [hb(r, s, durs[r] * (s + 1))
                  for s in range(4) for r in range(3)]
        report = feed(events)
        stragglers = [e for e in report.events if e.kind == "straggler"]
        assert stragglers and all(e.rank == 2 for e in stragglers)

    def test_deterministic_replay_agrees(self):
        events = [hb(r, s, 1e-6) for s in range(5) for r in range(3)]
        assert evaluate_health(events).to_dict() == feed(events).to_dict()


class TestMonitorAttachedMidRun:
    def _full_stream(self):
        # Rank 1 is a genuine straggler in the early steps only; times
        # are cumulative per rank so consecutive-beat deltas (what the
        # monitor measures) equal the intended step durations.
        events = []
        t = {r: 0.0 for r in range(3)}
        for s in range(6):
            for r in range(3):
                t[r] += 5e-5 if (r == 1 and s < 3) else 1e-5
                events.append(hb(r, s, t[r]))
        return events

    def test_late_attach_sees_no_stale_alerts(self):
        # Attach after the straggler phase ended: the monitor never saw
        # the slow steps, so it must stay quiet — the first heartbeat
        # per rank establishes state without inventing a duration from
        # the pre-attach gap.
        events = self._full_stream()
        late = [e for e in events if dict(e.tag)["step"] >= 4]
        assert feed(late).events == ()

    def test_full_stream_does_flag(self):
        # Control: the same stream seen from the start raises it.
        report = feed(self._full_stream())
        assert report.counts.get("straggler") == 1

    def test_attach_mid_step_skew_below_threshold(self):
        # At attach time ranks are one step apart (a normal pipeline
        # skew): below stall_steps, so no stall may be raised.
        events = [hb(0, 5, 1e-4), hb(1, 4, 1e-4), hb(2, 5, 1.1e-4)]
        assert feed(events).counts.get("stall") is None

    def test_attach_still_catches_future_stall(self):
        # A rank that keeps lagging *after* attach is still caught.
        events = [hb(0, 4, 1e-4), hb(1, 4, 1e-4)]
        events += [hb(0, s, 1e-4 + 1e-5 * s) for s in range(5, 9)]
        report = feed(events)
        assert report.counts.get("stall") == 1
        assert report.events[0].rank == 1


class TestDedupeAcrossShrink:
    def _mark(self, op, rank=0, t=1e-6):
        return TraceEvent(rank=rank, op=op, peer=-1, nbytes=0,
                          t_start=t, t_end=t)

    def test_repeat_straggler_collapses_within_epoch(self):
        # Rank 2 is slow on every step: the rule trips repeatedly but
        # the (kind, rank, epoch) dedupe emits exactly one event.
        events = []
        t = {r: 0.0 for r in range(3)}
        for s in range(6):
            for r in range(3):
                t[r] += 5e-5 if r == 2 else 1e-5
                events.append(hb(r, s, t[r]))
        report = feed(events)
        assert report.counts.get("straggler") == 1

    def test_shrink_opens_a_fresh_epoch(self):
        # Same persistent straggler, interrupted by a crash (the
        # elastic trainer's shrink): one event per epoch, two total.
        events = []
        t = {r: 0.0 for r in range(3)}
        for s in range(4):
            for r in range(3):
                t[r] += 5e-5 if r == 2 else 1e-5
                events.append(hb(r, s, t[r]))
        events.append(self._mark("fault.crash", rank=0, t=5e-4))
        t = {r: 1e-3 for r in range(3)}
        for s in range(4):
            for r in range(3):
                t[r] += 5e-5 if r == 2 else 1e-5
                events.append(hb(r, s, t[r]))
        report = feed(events)
        stragglers = [e for e in report.events if e.kind == "straggler"]
        assert len(stragglers) == 2
        assert all(e.rank == 2 for e in stragglers)

    def test_ckpt_degraded_dedupes_per_epoch_too(self):
        events = [self._mark("ckpt.degraded"), self._mark("ckpt.degraded")]
        assert feed(events).counts == {"ckpt_degraded": 1}
        events.insert(1, self._mark("fault.crash"))
        assert feed(events).counts == {"ckpt_degraded": 2}

    def test_shrink_discards_unjudged_durations(self):
        # Durations accumulated before the crash but never judged (the
        # crash lands before any later step reports) must not leak into
        # the post-shrink world where rank numbering changed: the world
        # is uniform afterwards, so nothing may be raised.
        events = []
        t = {r: 0.0 for r in range(3)}
        for s in range(3):  # step 2 is slow on rank 1, never judged
            for r in range(3):
                t[r] += 5e-5 if (r == 1 and s == 2) else 1e-5
                events.append(hb(r, s, t[r]))
        events.append(self._mark("fault.crash", rank=1, t=5e-4))
        t = {r: 1e-3 for r in range(2)}
        for s in range(3, 6):
            for r in range(2):  # shrunk world, uniform speed
                t[r] += 1e-5
                events.append(hb(r, s, t[r]))
        assert feed(events).counts.get("straggler") is None


class TestEmitterEdges:
    def _run(self, program, *, trace):
        engine = SimEngine(2, None, trace=trace)
        return engine, engine.run(program)

    def test_noop_when_tracing_disabled(self):
        def program(comm):
            before = comm.clock
            emit_heartbeat(comm, step=0, loss=1.0, phase="train")
            return comm.clock - before

        engine, result = self._run(program, trace=False)
        assert result.values == (0.0, 0.0)  # clock untouched
        assert not engine.tracer.enabled

    def test_zero_duration_and_sorted_tags_when_enabled(self):
        def program(comm):
            emit_heartbeat(comm, step=3, loss=0.25, phase="warm")
            return None

        engine, _ = self._run(program, trace=True)
        beats = [e for e in engine.tracer.canonical() if e.op == HB_OP]
        assert len(beats) == 2
        for ev in beats:
            assert ev.t_start == ev.t_end and ev.nbytes == 0
            assert list(ev.tag) == sorted(ev.tag)
            assert heartbeat_fields(ev) == {
                "loss": 0.25, "phase": "warm", "step": 3,
            }

    def test_fields_empty_for_non_heartbeat(self):
        ev = TraceEvent(rank=0, op="send", peer=1, nbytes=8,
                        t_start=0.0, t_end=1e-6)
        assert heartbeat_fields(ev) == {}

    def test_nan_loss_survives_round_trip(self):
        def program(comm):
            emit_heartbeat(comm, step=0, loss=float("nan"))
            return None

        engine, _ = self._run(program, trace=True)
        beats = [e for e in engine.tracer.canonical() if e.op == HB_OP]
        losses = [heartbeat_fields(e)["loss"] for e in beats]
        assert all(math.isnan(v) for v in losses)
        assert all(loss_is_bad(v) for v in losses)

    def test_loss_is_bad_classification(self):
        assert not loss_is_bad(None)
        assert not loss_is_bad(0.5)
        assert loss_is_bad(float("inf"))
        assert loss_is_bad(float("nan"))

    def test_metrics_sink_receives_beats_without_trace_storage(self):
        # Attaching a metrics sink enables recording even when no trace
        # is stored — that is how `repro watch` monitors live without
        # the memory cost of a full trace buffer.
        monitor = HealthMonitor()
        engine = SimEngine(2, None, trace=False, metrics=monitor)

        def program(comm):
            emit_heartbeat(comm, step=0)
            return None

        engine.run(program)
        assert monitor.heartbeats_seen == 2
        assert monitor.finish().events == ()


class TestWarmupBoundary:
    def test_step_equal_warmup_is_judged(self):
        cfg = HealthConfig(warmup_steps=2)
        events = []
        t = {r: 0.0 for r in range(3)}
        for s in range(4):
            for r in range(3):
                t[r] += 5e-5 if r == 0 else 1e-5
                events.append(hb(r, s, t[r]))
        report = feed(events, cfg)
        steps = {e.step for e in report.events if e.kind == "straggler"}
        assert steps and min(steps) >= 2

    def test_zero_warmup_judges_earliest_measurable_step(self):
        # Step 0 has no measurable duration (the first beat per rank
        # only establishes state), so with warmup 0 the first judged
        # step is step 1.
        cfg = HealthConfig(warmup_steps=0)
        events = []
        t = {r: 0.0 for r in range(3)}
        for s in range(2):
            for r in range(3):
                t[r] += 5e-5 if r == 1 else 1e-5
                events.append(hb(r, s, t[r]))
        report = feed(events, cfg)
        assert report.counts.get("straggler") == 1
