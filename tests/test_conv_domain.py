"""Tests for domain-parallel convolution with halo exchange
(repro.dist.conv_domain) against the serial reference."""

import numpy as np
import pytest

from repro.dist.conv_domain import DomainConv2D
from repro.dist.layers import conv2d_backward, conv2d_forward
from repro.dist.partition import BlockPartition
from repro.errors import ConfigurationError, RankFailedError
from repro.simmpi.engine import SimEngine

RNG = np.random.default_rng(23)


def _run_domain_forward(pd, x, w, k):
    """Run DomainConv2D.forward over pd ranks; reassemble full output."""
    h = x.shape[2]
    part = BlockPartition(h, pd)

    def prog(comm):
        op = DomainConv2D(comm, h, k, k)
        x_local = part.take(x, comm.rank, axis=2)
        return op.forward(x_local, w)

    res = SimEngine(pd).run(prog)
    return np.concatenate(list(res.values), axis=2)


def _run_domain_backward(pd, x, w, dy, k):
    """Run forward+backward; reassemble dx and sum dw partials."""
    h = x.shape[2]
    part = BlockPartition(h, pd)

    def prog(comm):
        op = DomainConv2D(comm, h, k, k)
        x_local = part.take(x, comm.rank, axis=2)
        op.forward(x_local, w)
        dy_local = part.take(dy, comm.rank, axis=2)
        return op.backward(dy_local, w)

    res = SimEngine(pd).run(prog)
    dx = np.concatenate([v[0] for v in res.values], axis=2)
    dw = sum(v[1] for v in res.values)
    return dx, dw


class TestForward:
    @pytest.mark.parametrize("pd", [1, 2, 3, 4])
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matches_serial_same_padding(self, pd, k):
        x = RNG.standard_normal((2, 3, 12, 7))
        w = RNG.standard_normal((4, 3, k, k))
        got = _run_domain_forward(pd, x, w, k)
        expected = conv2d_forward(x, w, stride=1, pad=k // 2)
        np.testing.assert_allclose(got, expected, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("pd", [2, 4])
    def test_uneven_row_blocks(self, pd):
        x = RNG.standard_normal((1, 2, 10, 5))  # 10 rows over 4 -> 3,3,2,2
        w = RNG.standard_normal((3, 2, 3, 3))
        got = _run_domain_forward(pd, x, w, 3)
        np.testing.assert_allclose(got, conv2d_forward(x, w, 1, 1), rtol=1e-12)

    def test_pointwise_conv_needs_no_halo(self):
        """1x1 convolutions exchange nothing (Eq. 7)."""
        x = RNG.standard_normal((1, 2, 8, 4))
        w = RNG.standard_normal((3, 2, 1, 1))
        eng = SimEngine(4, trace=True)
        part = BlockPartition(8, 4)

        def prog(comm):
            op = DomainConv2D(comm, 8, 1, 1)
            return op.forward(part.take(x, comm.rank, axis=2), w)

        res = eng.run(prog)
        got = np.concatenate(list(res.values), axis=2)
        np.testing.assert_allclose(got, conv2d_forward(x, w, 1, 0), rtol=1e-12)
        assert eng.tracer.message_count("send") == 0

    def test_halo_volume_matches_eq7(self):
        """Each interior rank ships exactly B * W * C * floor(k/2) rows
        per direction in the forward exchange."""
        b, c, h, wd, k = 2, 3, 12, 5, 3
        x = RNG.standard_normal((b, c, h, wd))
        w = RNG.standard_normal((4, c, k, k))
        eng = SimEngine(2, trace=True)
        part = BlockPartition(h, 2)

        def prog(comm):
            op = DomainConv2D(comm, h, k, k)
            return op.forward(part.take(x, comm.rank, axis=2), w)

        eng.run(prog)
        sends = eng.tracer.messages("send")
        assert len(sends) == 2  # one per direction across the single boundary
        expected_bytes = b * c * (k // 2) * wd * 8  # float64
        for e in sends:
            assert e.nbytes == expected_bytes


class TestBackward:
    @pytest.mark.parametrize("pd", [1, 2, 3, 4])
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matches_serial(self, pd, k):
        x = RNG.standard_normal((2, 2, 12, 6))
        w = RNG.standard_normal((3, 2, k, k))
        dy = RNG.standard_normal((2, 3, 12, 6))
        dx, dw = _run_domain_backward(pd, x, w, dy, k)
        exp_dx, exp_dw = conv2d_backward(x, w, dy, stride=1, pad=k // 2)
        np.testing.assert_allclose(dx, exp_dx, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(dw, exp_dw, rtol=1e-10, atol=1e-12)

    def test_backward_before_forward_rejected(self):
        def prog(comm):
            op = DomainConv2D(comm, 8, 3, 3)
            op.backward(np.zeros((1, 2, 8, 4)), np.zeros((2, 2, 3, 3)))

        with pytest.raises(RankFailedError):
            SimEngine(1).run(prog)


class TestStrided:
    """Strided downsampling convolutions (the stride>1 extension)."""

    @pytest.mark.parametrize("pd", [1, 2, 4])
    @pytest.mark.parametrize("k,s", [(3, 2), (5, 2), (1, 2), (3, 4)])
    def test_forward_backward_match_serial(self, pd, k, s):
        h = 16
        x = RNG.standard_normal((2, 3, h, 8))
        w = RNG.standard_normal((4, 3, k, k))
        dy = RNG.standard_normal(conv2d_forward(x, w, s, k // 2).shape)
        part = BlockPartition(h, pd)
        opart = BlockPartition(h // s, pd)

        def prog(comm):
            op = DomainConv2D(comm, h, k, k, stride=s)
            y = op.forward(part.take(x, comm.rank, axis=2), w)
            dx, dw = op.backward(opart.take(dy, comm.rank, axis=2), w)
            return y, dx, dw

        res = SimEngine(pd).run(prog)
        y = np.concatenate([v[0] for v in res.values], axis=2)
        dx = np.concatenate([v[1] for v in res.values], axis=2)
        dw = sum(v[2] for v in res.values)
        exp_y = conv2d_forward(x, w, s, k // 2)
        exp_dx, exp_dw = conv2d_backward(x, w, dy, s, k // 2)
        np.testing.assert_allclose(y, exp_y, rtol=1e-10)
        np.testing.assert_allclose(dx, exp_dx, rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(dw, exp_dw, rtol=1e-10)

    def test_stride2_3x3_needs_no_bottom_halo(self):
        """The downsampling observation: k=3, pad=1, s=2 -> bottom halo 0,
        so only one message crosses each boundary per exchange."""

        def prog(comm):
            op = DomainConv2D(comm, 16, 3, 3, stride=2)
            assert op.top_halo == 1 and op.bottom_halo == 0
            x = RNG.standard_normal((1, 2, op.local_height, 4))
            return op.forward(x, RNG.standard_normal((2, 2, 3, 3))).shape

        eng = SimEngine(2, trace=True)
        eng.run(prog)
        # One downward send per boundary; no upward traffic.
        assert eng.tracer.message_count("send") == 1

    def test_misaligned_height_rejected(self):
        def prog(comm):
            DomainConv2D(comm, 10, 3, 3, stride=2)  # 10 % (2*2) != 0

        with pytest.raises(RankFailedError):
            SimEngine(2).run(prog)

    def test_misaligned_width_rejected(self):
        def prog(comm):
            op = DomainConv2D(comm, 8, 3, 3, stride=2)
            op.forward(np.zeros((1, 1, 8, 5)), np.zeros((1, 1, 3, 3)))

        with pytest.raises(RankFailedError):
            SimEngine(1).run(prog)

    def test_bad_stride_rejected(self):
        def prog(comm):
            DomainConv2D(comm, 8, 3, 3, stride=0)

        with pytest.raises(RankFailedError):
            SimEngine(1).run(prog)


class TestValidation:
    def test_even_kernel_rejected(self):
        def prog(comm):
            DomainConv2D(comm, 8, 2, 2)

        with pytest.raises(RankFailedError) as err:
            SimEngine(1).run(prog)
        assert isinstance(err.value.failures[0], ConfigurationError)

    def test_block_thinner_than_halo_rejected(self):
        def prog(comm):
            DomainConv2D(comm, 4, 5, 5)  # 1 row per rank < halo 2

        with pytest.raises(RankFailedError):
            SimEngine(4).run(prog)

    def test_wrong_block_height_rejected(self):
        def prog(comm):
            op = DomainConv2D(comm, 8, 3, 3)
            op.forward(np.zeros((1, 1, 5, 4)), np.zeros((1, 1, 3, 3)))

        with pytest.raises(RankFailedError):
            SimEngine(2).run(prog)

    def test_wrong_kernel_shape_rejected(self):
        def prog(comm):
            op = DomainConv2D(comm, 8, 3, 3)
            op.forward(np.zeros((1, 1, 8, 4)), np.zeros((1, 1, 5, 5)))

        with pytest.raises(RankFailedError):
            SimEngine(1).run(prog)
