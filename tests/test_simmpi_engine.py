"""Tests for the simulated MPI engine and point-to-point semantics."""

import numpy as np
import pytest

from repro.errors import (
    CommunicatorError,
    ConfigurationError,
    DeadlockError,
    RankFailedError,
)
from repro.machine.params import MachineParams, cori_knl
from repro.simmpi.engine import SimEngine
from repro.simmpi.network import PostalNetwork, payload_bytes


class TestEngineBasics:
    def test_returns_per_rank_values(self):
        res = SimEngine(4).run(lambda comm: comm.rank * 10)
        assert res.values == (0, 10, 20, 30)
        assert res[2] == 20

    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            SimEngine(0)
        with pytest.raises(ConfigurationError):
            SimEngine(2, timeout=0)

    def test_rank_failure_propagates_with_rank(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            return comm.rank

        with pytest.raises(RankFailedError) as err:
            SimEngine(3).run(prog)
        assert 1 in err.value.failures
        assert isinstance(err.value.failures[1], ValueError)

    def test_engine_reusable_and_clocks_reset(self):
        eng = SimEngine(2)

        def prog(comm):
            comm.send(np.ones(10), 1 - comm.rank)
            comm.recv(1 - comm.rank)
            return comm.clock

        first = eng.run(prog)
        second = eng.run(prog)
        assert first.clocks == second.clocks
        assert first.time > 0

    def test_deadlock_detection(self):
        eng = SimEngine(2, timeout=0.3)

        def prog(comm):
            if comm.rank == 0:
                comm.recv(1)  # never sent
            return None

        with pytest.raises(RankFailedError) as err:
            eng.run(prog)
        assert isinstance(err.value.failures[0], DeadlockError)

    def test_concurrent_failures_all_aggregated(self):
        def prog(comm):
            if comm.rank in (1, 3):
                raise ValueError(f"boom {comm.rank}")
            comm.recv((comm.rank + 1) % 4)  # blocks until the abort unblocks it

        with pytest.raises(RankFailedError) as err:
            SimEngine(4, timeout=10.0).run(prog)
        failures = err.value.failures
        assert isinstance(failures[1], ValueError)
        assert isinstance(failures[3], ValueError)
        assert str(failures[1]) == "boom 1"
        # The interrupted (blocked) ranks surface as deadlock-style
        # interruptions alongside the original failures, never silently.
        for rank, exc in failures.items():
            if rank not in (1, 3):
                assert isinstance(exc, DeadlockError)

    def test_watchdog_names_the_unmatched_receive(self):
        eng = SimEngine(2, timeout=0.3)

        def prog(comm):
            if comm.rank == 1:
                comm.recv(0, tag=9)  # never sent

        with pytest.raises(RankFailedError) as err:
            eng.run(prog)
        exc = err.value.failures[1]
        assert isinstance(exc, DeadlockError)
        assert "timed out" in str(exc)

    def test_peer_failure_unblocks_waiting_rank(self):
        eng = SimEngine(2, timeout=30.0)

        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("early death")
            comm.recv(0)  # must abort quickly, not wait 30s

        import time

        t0 = time.monotonic()
        with pytest.raises(RankFailedError):
            eng.run(prog)
        assert time.monotonic() - t0 < 5.0


class TestPointToPoint:
    def test_payload_copied_on_send(self):
        def prog(comm):
            if comm.rank == 0:
                data = np.zeros(4)
                comm.send(data, 1)
                data[:] = 99.0  # must not affect the receiver
                return None
            return comm.recv(0)

        res = SimEngine(2).run(prog)
        np.testing.assert_array_equal(res[1], np.zeros(4))

    def test_message_order_preserved_per_channel(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, 1, tag=3)
                return None
            return [comm.recv(0, tag=3) for _ in range(5)]

        assert SimEngine(2).run(prog)[1] == [0, 1, 2, 3, 4]

    def test_tags_isolate_messages(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            # Receive in the opposite tag order.
            return comm.recv(0, tag=2), comm.recv(0, tag=1)

        assert SimEngine(2).run(prog)[1] == ("b", "a")

    def test_python_objects_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"k": [1, 2, 3]}, 1)
                return None
            return comm.recv(0)

        assert SimEngine(2).run(prog)[1] == {"k": [1, 2, 3]}

    def test_bad_peer_rank(self):
        def prog(comm):
            comm.send(1, 5)

        with pytest.raises(RankFailedError) as err:
            SimEngine(2).run(prog)
        assert isinstance(err.value.failures[0], CommunicatorError)

    def test_negative_advance_rejected(self):
        def prog(comm):
            comm.advance(-1.0)

        with pytest.raises(RankFailedError):
            SimEngine(1).run(prog)


class TestVirtualClock:
    def test_message_timing_postal_model(self):
        m = MachineParams(alpha=1e-3, beta_per_byte=1e-6, element_bytes=4)

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, dtype=np.float32), 1)  # 400 bytes
            else:
                comm.recv(0)
            return comm.clock

        res = SimEngine(2, m).run(prog)
        # Receiver lands at alpha + beta * 400 bytes.
        assert res.values[1] == pytest.approx(1e-3 + 1e-6 * 400)
        # Sender paid only the injection latency.
        assert res.values[0] == pytest.approx(1e-3)

    def test_advance_models_local_compute(self):
        def prog(comm):
            comm.advance(2.5)
            return comm.clock

        res = SimEngine(2, cori_knl()).run(prog)
        assert res.clocks == (2.5, 2.5)
        assert res.time == 2.5

    def test_recv_waits_for_late_sender(self):
        m = MachineParams(alpha=1.0, beta_per_byte=0.0)

        def prog(comm):
            if comm.rank == 0:
                comm.advance(10.0)  # busy computing before sending
                comm.send(b"x", 1)
            else:
                comm.recv(0)
            return comm.clock

        res = SimEngine(2, m).run(prog)
        assert res.values[1] == pytest.approx(11.0)


class TestPayloadBytes:
    def test_numpy_uses_nbytes(self):
        assert payload_bytes(np.zeros(10, dtype=np.float32)) == 40
        assert payload_bytes(np.zeros((2, 3), dtype=np.float64)) == 48

    def test_scalars_small(self):
        assert payload_bytes(3.14) == 8
        assert payload_bytes(12345) == 8
        assert payload_bytes(True) == 8

    def test_complex_is_two_doubles(self):
        assert payload_bytes(1.0 + 2.0j) == 16

    def test_numpy_scalars_use_dtype_itemsize(self):
        assert payload_bytes(np.float32(1.5)) == 4
        assert payload_bytes(np.int64(3)) == 8
        assert payload_bytes(np.complex128(1j)) == 16
        assert payload_bytes(np.bool_(True)) == 1

    def test_objects_use_pickle_length(self):
        import pickle

        small = payload_bytes({"a": 1})
        big = payload_bytes({"a": list(range(1000))})
        assert big > small > 0
        obj = {"k": [1, 2, 3]}
        assert payload_bytes(obj) == len(
            pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def test_network_transfer_time(self):
        net = PostalNetwork(MachineParams(alpha=1e-6, beta_per_byte=1e-9))
        assert net.transfer_time(1000) == pytest.approx(1e-6 + 1e-6)
        with pytest.raises(ValueError):
            net.transfer_time(-1)
