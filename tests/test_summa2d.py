"""Tests for the executable 2D SUMMA baseline: correctness on every grid
shape, and the measured Section-4 volume comparison against 1.5D."""

import numpy as np
import pytest

from repro.dist.grid import GridComm
from repro.dist.matmul15d import forward_15d
from repro.dist.partition import BlockPartition
from repro.dist.summa2d import distribute_2d, summa_matmul, summa_stationary_c
from repro.errors import PartitionError, RankFailedError
from repro.machine.params import cori_knl
from repro.simmpi.engine import SimEngine

RNG = np.random.default_rng(11)


class TestDistribute2D:
    def test_blocks_tile_the_matrix(self):
        a = np.arange(24, dtype=float).reshape(6, 4)

        def prog(comm):
            grid = GridComm(comm, 2, 2)
            return distribute_2d(a, grid)

        res = SimEngine(4).run(prog)
        top = np.hstack([res[0], res[1]])
        bottom = np.hstack([res[2], res[3]])
        np.testing.assert_array_equal(np.vstack([top, bottom]), a)

    def test_rejects_non_matrix(self):
        def prog(comm):
            distribute_2d(np.zeros(4), GridComm(comm, 1, 1))

        with pytest.raises(RankFailedError):
            SimEngine(1).run(prog)


@pytest.mark.parametrize("pr,pc", [(1, 1), (2, 2), (2, 3), (3, 2), (4, 2), (1, 4), (4, 1)])
class TestCorrectness:
    def test_matches_numpy(self, pr, pc):
        m, n = 10, 8
        k = 2 * np.lcm(pr, pc)  # aligned panels
        a = RNG.standard_normal((m, k))
        b = RNG.standard_normal((k, n))

        def prog(comm):
            return summa_matmul(comm, a, b, pr, pc)

        res = SimEngine(pr * pc).run(prog)
        expected = a @ b
        rows = BlockPartition(m, pr)
        cols = BlockPartition(n, pc)
        for rank, c_local in enumerate(res.values):
            r, c = divmod(rank, pc)
            block = cols.take(rows.take(expected, r, axis=0), c, axis=1)
            np.testing.assert_allclose(c_local, block, rtol=1e-11)


class TestValidation:
    def test_unaligned_panels_rejected(self):
        a = RNG.standard_normal((4, 7))  # k=7 not divisible by lcm(2,2)=2
        b = RNG.standard_normal((7, 4))

        def prog(comm):
            summa_matmul(comm, a, b, 2, 2)

        with pytest.raises(RankFailedError) as err:
            SimEngine(4).run(prog)
        assert isinstance(err.value.failures[0], PartitionError)

    def test_nonconforming_rejected(self):
        def prog(comm):
            summa_matmul(comm, np.zeros((4, 6)), np.zeros((5, 4)), 1, 1)

        with pytest.raises(RankFailedError):
            SimEngine(1).run(prog)

    def test_wrong_block_shape_rejected(self):
        def prog(comm):
            grid = GridComm(comm, 2, 2)
            summa_stationary_c(grid, np.zeros((3, 3)), np.zeros((4, 4)), 8, 8, 8)

        with pytest.raises(RankFailedError):
            SimEngine(4).run(prog)


class TestSection4VolumeMeasured:
    """The Sec.-4 ordering, observed from real message traffic."""

    @staticmethod
    def _measure(prog, p, **kwargs):
        engine = SimEngine(p, cori_knl(), trace=True, **kwargs)
        engine.run(prog)
        recv = engine.tracer.total_bytes("recv")
        return recv / p  # mean received bytes per process

    def test_summa_receives_both_matrices(self):
        """Per-process receive volume ~ |A|/pr + |B|/pc words (minus the
        locally owned panels)."""
        d, batch, pr, pc = 16, 32, 2, 2
        w = RNG.standard_normal((d, d))
        x = RNG.standard_normal((d, batch))

        def prog(comm):
            return summa_matmul(comm, w, x, pr, pc)

        per_proc = self._measure(prog, pr * pc)
        # Receives: (pc-1)/pc of its A row panels + (pr-1)/pr of its B
        # column panels (binomial bcast delivers each panel once).
        expected = ((d * d / pr) * (pc - 1) / pc + (d * batch / pc) * (pr - 1) / pr) * 8
        assert per_proc == pytest.approx(expected, rel=0.05)

    def test_1p5d_moves_less_when_activations_dominate(self):
        """|W| < Bd: every 2D algorithm must move two matrices, the 1.5D
        algorithm only the smaller one (Sec. 4) — measured end to end."""
        d, batch, pr, pc = 16, 256, 2, 2
        w = RNG.standard_normal((d, d))
        x = RNG.standard_normal((d, batch))

        def summa_prog(comm):
            return summa_matmul(comm, w, x, pr, pc)

        def p15d_prog(comm):
            grid = GridComm(comm, pr, pc)
            rows = BlockPartition(d, pr)
            cols = BlockPartition(batch, pc)
            w_local = rows.take(w, grid.row, axis=0)
            x_local = cols.take(x, grid.col, axis=1)
            return forward_15d(grid, w_local, x_local)

        v_summa = self._measure(summa_prog, pr * pc)
        v_15d = self._measure(p15d_prog, pr * pc)
        assert v_15d < v_summa

    def test_results_agree_between_algorithms(self):
        d, batch, pr, pc = 8, 16, 2, 2
        w = RNG.standard_normal((d, d))
        x = RNG.standard_normal((d, batch))

        def prog(comm):
            grid = GridComm(comm, pr, pc)
            c_2d = summa_stationary_c(
                grid, distribute_2d(w, grid), distribute_2d(x, grid), d, d, batch
            )
            rows = BlockPartition(d, pr)
            cols = BlockPartition(batch, pc)
            y_15d = forward_15d(
                grid, rows.take(w, grid.row, axis=0), cols.take(x, grid.col, axis=1)
            )
            # The 1.5D result holds full rows of the batch shard; slice
            # down to this rank's 2-D block for comparison.
            return np.max(np.abs(c_2d - rows.take(y_15d, grid.row, axis=0)))

        res = SimEngine(pr * pc).run(prog)
        assert max(res.values) < 1e-11
