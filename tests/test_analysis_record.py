"""Tests for versioned RunRecords: build, validate, round-trip, all trainers."""

import dataclasses

import numpy as np
import pytest

from repro.analysis import (
    RUN_RECORD_SCHEMA,
    RunRecord,
    read_run_record,
    validate_run_record,
    write_run_record,
)
from repro.dist.elastic import elastic_mlp_train, elastic_run_record
from repro.dist.integrated import (
    CNNParams,
    IntegratedCNNConfig,
    cnn_run_record,
    distributed_cnn_train,
)
from repro.dist.summa2d import summa_matmul, summa_run_record
from repro.dist.train import MLPParams, distributed_mlp_train, mlp_run_record
from repro.data.synthetic import synthetic_images
from repro.errors import ConfigurationError
from repro.simmpi.engine import SimEngine
from repro.simmpi.faults import Crash, FaultPlan

DIMS = (12, 9, 5)


def _mlp_record(pr=2, pc=2, batch=8, steps=2, meta=None):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((DIMS[0], 4 * batch))
    y = rng.integers(0, DIMS[-1], 4 * batch)
    engine = SimEngine(pr * pc, trace=True)
    _, _, sim = distributed_mlp_train(
        MLPParams.init(DIMS, seed=0), x, y,
        pr=pr, pc=pc, batch=batch, steps=steps, engine=engine,
    )
    return mlp_run_record(
        engine, sim, dims=DIMS, pr=pr, pc=pc, batch=batch, steps=steps,
        meta=meta,
    )


class TestBuildAndValidate:
    def test_payload_validates(self):
        record = _mlp_record()
        validate_run_record(record.to_dict())  # must not raise

    def test_counters_present(self):
        record = _mlp_record()
        for key in ("dag_nodes", "dag_edges", "critical_events",
                    "idle_fraction", "imbalance", "straggler_rank"):
            assert key in record.counters
        assert record.counters["dag_nodes"] > 0

    def test_critical_bounded_by_makespan(self):
        record = _mlp_record()
        assert record.critical["length_s"] <= record.makespan_s

    def test_span_rows_shape(self):
        record = _mlp_record()
        names = [r["span"] for r in record.spans]
        assert "step" in names
        step = record.span_row("step")
        assert step["count"] > 0 and step["virtual_time_s"] > 0
        # Sends attribute to the innermost span (the collectives).
        assert any(r["sends"] > 0 and r["bytes"] > 0 for r in record.spans)
        assert record.span_row("no-such-span") is None


class TestRoundTrip:
    def test_json_round_trip_is_byte_identical(self):
        record = _mlp_record(meta={"label": "a"})
        text = record.to_json()
        again = RunRecord.from_json(text)
        assert again == record
        assert again.to_json() == text

    def test_file_round_trip(self, tmp_path):
        record = _mlp_record()
        path = write_run_record(record, str(tmp_path / "sub" / "rec.json"))
        assert read_run_record(path) == record

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_run_record(str(tmp_path / "absent.json"))

    def test_determinism_across_reruns(self):
        assert _mlp_record().to_json() == _mlp_record().to_json()


class TestValidatorRejects:
    def _payload(self):
        return _mlp_record().to_dict()

    def test_wrong_schema(self):
        payload = self._payload()
        payload["schema"] = "repro.analysis.record/v999"
        with pytest.raises(ConfigurationError, match="schema"):
            validate_run_record(payload)

    def test_missing_required_key(self):
        payload = self._payload()
        del payload["makespan_s"]
        with pytest.raises(ConfigurationError, match="missing key"):
            validate_run_record(payload)

    def test_unknown_key(self):
        payload = self._payload()
        payload["extra"] = 1
        with pytest.raises(ConfigurationError, match="unknown key"):
            validate_run_record(payload)

    def test_bad_grid(self):
        payload = self._payload()
        payload["grid"]["pr"] = 0
        with pytest.raises(ConfigurationError, match="grid.pr"):
            validate_run_record(payload)

    def test_broken_decomposition(self):
        payload = self._payload()
        payload["ranks"][0]["compute_s"] += 1.0
        with pytest.raises(ConfigurationError, match="wall"):
            validate_run_record(payload)

    def test_critical_exceeding_makespan(self):
        payload = self._payload()
        payload["critical"]["length_s"] = payload["makespan_s"] * 2 + 1.0
        with pytest.raises(ConfigurationError, match="exceeds makespan"):
            validate_run_record(payload)

    def test_not_json(self):
        with pytest.raises(ConfigurationError):
            RunRecord.from_json("{nope")


class TestConfigKey:
    def test_machine_and_meta_excluded(self):
        a = _mlp_record(meta={"commit": "abc"})
        b = dataclasses.replace(
            a, machine={**a.machine, "name": "other box"}, meta={}
        )
        assert a.config_key == b.config_key

    def test_config_changes_key(self):
        a = _mlp_record(steps=2)
        b = _mlp_record(steps=3)
        assert a.config_key != b.config_key


class TestEveryTrainerEmits:
    def test_train(self):
        record = _mlp_record()
        assert record.trainer == "train"
        assert record.config["dims"] == list(DIMS)

    def test_elastic_with_faults(self):
        rng = np.random.default_rng(3)
        dims = (8, 10, 6)
        x = rng.standard_normal((dims[0], 32))
        y = rng.integers(0, dims[-1], 32)
        plan = FaultPlan(seed=3, crashes=(Crash(rank=1, at_step=3),))
        result = elastic_mlp_train(
            MLPParams.init(dims, seed=3), x, y, pr=2, pc=2, batch=8,
            steps=6, checkpoint_every=2, faults=plan, trace=True,
        )
        record = elastic_run_record(result, batch=8, steps=6)
        validate_run_record(record.to_dict())
        assert record.trainer == "elastic"
        assert record.grid == {"pr": 2, "pc": 2}
        assert record.meta["failed_ranks"] == [1]
        assert record.meta["grids"][0] == [2, 2]

    def test_integrated(self):
        cfg = IntegratedCNNConfig(
            in_channels=2, height=8, width=8,
            conv_channels=(4,), conv_kernels=(3,), pool_after=(True,),
            fc_dims=(12, 5),
        )
        x, y = synthetic_images(16, 2, 8, 8, 5, seed=7)
        engine = SimEngine(4, trace=True)
        _, _, sim = distributed_cnn_train(
            cfg, CNNParams.init(cfg, seed=3), x, y,
            pr=2, pc=2, batch=8, steps=2, engine=engine,
        )
        record = cnn_run_record(
            engine, sim, config=cfg, pr=2, pc=2, batch=8, steps=2
        )
        validate_run_record(record.to_dict())
        assert record.trainer == "integrated"
        assert record.config["image"] == [2, 8, 8]

    def test_summa2d(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((8, 4))
        b = rng.standard_normal((4, 6))
        engine = SimEngine(4, trace=True)
        sim = engine.run(summa_matmul, a, b, 2, 2)
        record = summa_run_record(engine, sim, m=8, k=4, n=6, pr=2, pc=2)
        validate_run_record(record.to_dict())
        assert record.trainer == "summa2d"
        assert record.config == {"m": 8, "k": 4, "n": 6}

    def test_schema_tag(self):
        assert _mlp_record().to_dict()["schema"] == RUN_RECORD_SCHEMA


class TestCheckpointCounters:
    def _elastic_record(self, **train_kw):
        rng = np.random.default_rng(3)
        dims = (8, 10, 6)
        x = rng.standard_normal((dims[0], 32))
        y = rng.integers(0, dims[-1], 32)
        plan = FaultPlan(seed=3, crashes=(Crash(rank=1, at_step=3),))
        result = elastic_mlp_train(
            MLPParams.init(dims, seed=3), x, y, pr=2, pc=2, batch=8,
            steps=6, checkpoint_every=2, faults=plan, trace=True, **train_kw,
        )
        return elastic_run_record(result, batch=8, steps=6)

    def test_elastic_record_carries_ckpt_block(self):
        record = self._elastic_record()
        validate_run_record(record.to_dict())
        ckpt = record.ckpt
        # Marker events are per rank: one restore per survivor.
        assert ckpt["takes"] > 0 and ckpt["restores"] == 3
        assert ckpt["degraded"] == 0
        assert ckpt["stored_bytes"] > 0 and ckpt["fetched_bytes"] > 0
        # Replication stores the full state everywhere: strictly more.
        replicated = self._elastic_record(ckpt_mode="replicate")
        assert replicated.ckpt["stored_bytes"] > ckpt["stored_bytes"]

    def test_ckpt_block_round_trips(self):
        record = self._elastic_record()
        again = RunRecord.from_json(record.to_json())
        assert again.ckpt == record.ckpt
        assert again == record

    def test_untraced_runs_omit_ckpt(self):
        payload = _mlp_record().to_dict()
        assert "ckpt" not in payload

    def test_older_schemas_still_load(self):
        payload = _mlp_record().to_dict()
        for old in (
            "repro.analysis.record/v1",
            "repro.analysis.record/v2",
            "repro.analysis.record/v3",
        ):
            older = dict(payload)
            older["schema"] = old
            record = RunRecord.from_dict(older)
            assert record.ckpt == {}
            assert record.health == {}

    def test_validator_rejects_bad_ckpt(self):
        payload = self._elastic_record().to_dict()
        bad = dict(payload)
        bad["ckpt"] = {**payload["ckpt"], "mystery": 1}
        with pytest.raises(ConfigurationError, match="unknown"):
            validate_run_record(bad)
        bad = dict(payload)
        bad["ckpt"] = {**payload["ckpt"], "takes": -1}
        with pytest.raises(ConfigurationError):
            validate_run_record(bad)


class TestHealthBlock:
    def _faulty_record(self):
        from repro.observe.health import HealthConfig
        from repro.simmpi.faults import Straggler

        rng = np.random.default_rng(5)
        dims = (8, 10, 6)
        x = rng.standard_normal((dims[0], 32))
        y = rng.integers(0, dims[-1], 32)
        plan = FaultPlan(
            seed=5, stragglers=(Straggler(rank=0, factor=2.0),)
        )
        result = elastic_mlp_train(
            MLPParams.init(dims, seed=5), x, y, pr=2, pc=4, batch=8,
            steps=6, checkpoint_every=2, faults=plan, trace=True,
        )
        return elastic_run_record(
            result, batch=8, steps=6, health_config=HealthConfig()
        )

    def test_health_block_round_trips(self):
        record = self._faulty_record()
        assert record.health["counts"].get("straggler", 0) >= 1
        payload = record.to_dict()
        validate_run_record(payload)
        assert payload["health"]["events"]
        counts = {}
        for event in payload["health"]["events"]:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        assert counts == payload["health"]["counts"]
        again = RunRecord.from_json(record.to_json())
        assert again.health == record.health
        assert again == record

    def test_healthy_run_omits_block(self):
        from repro.observe.health import HealthConfig

        rng = np.random.default_rng(0)
        x = rng.standard_normal((DIMS[0], 32))
        y = rng.integers(0, DIMS[-1], 32)
        engine = SimEngine(4, trace=True)
        _, _, sim = distributed_mlp_train(
            MLPParams.init(DIMS, seed=0), x, y,
            pr=2, pc=2, batch=8, steps=2, engine=engine,
        )
        record = mlp_run_record(
            engine, sim, dims=DIMS, pr=2, pc=2, batch=8, steps=2,
            health_config=HealthConfig(),
        )
        assert record.health == {}
        assert "health" not in record.to_dict()

    def test_no_config_means_no_health(self):
        assert "health" not in _mlp_record().to_dict()

    @pytest.mark.parametrize(
        "health",
        [
            {"mystery": 1},
            {"counts": {"not_a_kind": 1}},
            {"counts": {"stall": -1}},
            {"counts": []},
            {"events": {"kind": "stall"}},
            {"events": [{"kind": "stall", "rank": 0, "t_s": 1e-6,
                         "severity": "mild", "detail": "x"}]},
            {"events": [{"kind": "nope", "rank": 0, "t_s": 1e-6,
                         "severity": "crit", "detail": "x"}]},
            {"events": [{"kind": "stall", "rank": "zero", "t_s": 1e-6,
                         "severity": "crit", "detail": "x"}]},
        ],
    )
    def test_validator_rejects_bad_health(self, health):
        payload = _mlp_record().to_dict()
        payload["health"] = health
        with pytest.raises(ConfigurationError):
            validate_run_record(payload)
