"""Tests for the alpha-beta machine model (repro.machine.params)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.machine.params import MachineParams, cori_knl, generic_cluster, zero_latency


class TestMachineParams:
    def test_beta_is_per_element(self):
        m = MachineParams(alpha=1e-6, beta_per_byte=1e-9, element_bytes=4)
        assert m.beta == pytest.approx(4e-9)

    def test_bandwidth_inverse_of_beta(self):
        m = MachineParams(alpha=0.0, beta_per_byte=1.0 / 6e9)
        assert m.bandwidth == pytest.approx(6e9)

    def test_zero_beta_gives_infinite_bandwidth(self):
        m = MachineParams(alpha=1e-6, beta_per_byte=0.0)
        assert math.isinf(m.bandwidth)

    def test_message_time(self):
        m = MachineParams(alpha=2e-6, beta_per_byte=1.0 / 6e9, element_bytes=4)
        assert m.message_time(0) == pytest.approx(2e-6)
        assert m.message_time(1.5e9) == pytest.approx(2e-6 + 1.0, rel=1e-6)

    def test_message_time_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            cori_knl().message_time(-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(alpha=-1.0, beta_per_byte=1e-9),
            dict(alpha=1e-6, beta_per_byte=-1e-9),
            dict(alpha=1e-6, beta_per_byte=1e-9, element_bytes=0),
            dict(alpha=1e-6, beta_per_byte=1e-9, flops_peak=0),
        ],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            MachineParams(**kwargs)

    def test_derated_scales_both_terms(self):
        m = cori_knl().derated(latency_factor=2.0, bandwidth_factor=0.5)
        base = cori_knl()
        assert m.alpha == pytest.approx(2 * base.alpha)
        assert m.beta_per_byte == pytest.approx(2 * base.beta_per_byte)

    def test_derated_rejects_nonpositive_factors(self):
        with pytest.raises(ConfigurationError):
            cori_knl().derated(latency_factor=0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            cori_knl().alpha = 1.0  # type: ignore[misc]


class TestPresets:
    def test_cori_knl_matches_table1(self):
        m = cori_knl()
        assert m.alpha == pytest.approx(2e-6)
        assert m.bandwidth == pytest.approx(6e9)
        assert m.element_bytes == 4

    def test_generic_cluster(self):
        m = generic_cluster(latency_us=10, bandwidth_gbps=25)
        assert m.alpha == pytest.approx(1e-5)
        assert m.bandwidth == pytest.approx(25e9)

    def test_generic_cluster_validation(self):
        with pytest.raises(ConfigurationError):
            generic_cluster(bandwidth_gbps=0)

    def test_zero_latency(self):
        m = zero_latency()
        assert m.alpha == 0.0
        assert m.message_time(100) > 0
