"""Tests for datasets, result tables, charts and exports."""

import json
import os

import numpy as np
import pytest

from repro.core.results import ResultTable
from repro.data.imagenet import IMAGENET_LSVRC_2012, ImageNetMeta
from repro.data.synthetic import separable_blobs, synthetic_classification, synthetic_images
from repro.errors import ConfigurationError
from repro.report.charts import bar_chart, stacked_bar_chart
from repro.report.export import export_results, write_text
from repro.report.tables import format_seconds, format_speedup


class TestImageNetMeta:
    def test_table1_constants(self):
        assert IMAGENET_LSVRC_2012.train_images == 1_200_000
        assert IMAGENET_LSVRC_2012.num_classes == 1000

    def test_iterations_per_epoch(self):
        assert IMAGENET_LSVRC_2012.iterations_per_epoch(2048) == pytest.approx(585.9375)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ImageNetMeta("x", 0, 10, 224)
        with pytest.raises(ConfigurationError):
            IMAGENET_LSVRC_2012.iterations_per_epoch(0)


class TestSynthetic:
    def test_classification_shapes_and_determinism(self):
        x1, y1 = synthetic_classification(10, 20, 4, seed=5)
        x2, y2 = synthetic_classification(10, 20, 4, seed=5)
        assert x1.shape == (10, 20) and y1.shape == (20,)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)
        assert y1.min() >= 0 and y1.max() < 4

    def test_images_shape(self):
        x, y = synthetic_images(6, 3, 8, 9, 10, seed=0)
        assert x.shape == (6, 3, 8, 9)
        assert y.shape == (6,)

    def test_blobs_are_learnable(self):
        """Blobs separate: a nearest-centroid rule beats chance by a lot."""
        x, y = separable_blobs(8, 200, 3, seed=1)
        centroids = np.stack([x[:, y == k].mean(axis=1) for k in range(3)])
        pred = np.argmin(
            ((x.T[:, None, :] - centroids[None]) ** 2).sum(axis=2), axis=1
        )
        assert (pred == y).mean() > 0.9

    @pytest.mark.parametrize("fn", [synthetic_classification, separable_blobs])
    def test_validation(self, fn):
        with pytest.raises(ConfigurationError):
            fn(0, 10, 2)


class TestResultTable:
    def test_columns_in_insertion_order(self):
        t = ResultTable("t")
        t.add_row(b=1, a=2)
        t.add_row(c=3)
        assert t.columns == ("b", "a", "c")

    def test_missing_cells_render_dash(self):
        t = ResultTable("t")
        t.add_row(a=1)
        t.add_row(b=2)
        assert "-" in t.to_ascii()

    def test_column_accessor(self):
        t = ResultTable()
        t.extend([{"x": 1}, {"x": 2}])
        assert t.column("x") == (1, 2)
        with pytest.raises(ConfigurationError):
            t.column("nope")

    def test_csv_escaping(self):
        t = ResultTable()
        t.add_row(name='he said "hi", twice')
        csv = t.to_csv()
        assert '"he said ""hi"", twice"' in csv

    def test_json_roundtrip(self):
        t = ResultTable("numbers")
        t.add_row(v=1.5, label="x")
        data = json.loads(t.to_json())
        assert data["title"] == "numbers"
        assert data["rows"][0]["v"] == 1.5

    def test_float_formatting(self):
        t = ResultTable()
        t.add_row(tiny=1.23e-7, huge=4.56e8, mid=3.14159, zero=0.0)
        text = t.to_ascii()
        assert "1.230e-07" in text and "4.560e+08" in text and "3.142" in text

    def test_len(self):
        t = ResultTable()
        assert len(t) == 0
        t.add_row(a=1)
        assert len(t) == 1


class TestCharts:
    def test_bar_chart_scales_to_max(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_bar_chart_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            bar_chart([], [])
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [-1.0])

    def test_stacked_marks_best(self):
        text = stacked_bar_chart(
            ["g1", "g2"],
            [{"compute": 1.0, "comm": 3.0}, {"compute": 1.0, "comm": 0.5}],
        )
        best_line = [ln for ln in text.splitlines() if "<= best" in ln]
        assert len(best_line) == 1 and "g2" in best_line[0]

    def test_stacked_legend_lists_segments(self):
        text = stacked_bar_chart(["g"], [{"compute": 1.0, "comm": 2.0}])
        assert "compute" in text and "comm" in text

    def test_stacked_rejects_negative_segment(self):
        with pytest.raises(ConfigurationError):
            stacked_bar_chart(["g"], [{"compute": -1.0}])


class TestFormatters:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, "0s"), (5e-7, "0.5us"), (2.5e-3, "2.50ms"), (1.5, "1.50s"), (600, "10.0min")],
    )
    def test_format_seconds(self, value, expected):
        assert format_seconds(value) == expected

    def test_format_speedup(self):
        assert format_speedup(10.0, 4.0) == "2.5x"
        assert format_speedup(10.0, 0.0) == "inf"


class TestExport:
    def test_export_writes_three_files(self, tmp_path):
        t = ResultTable("x")
        t.add_row(a=1, b=2.5)
        paths = export_results(t, tmp_path, "demo")
        assert set(paths) == {"txt", "csv", "json"}
        for path in paths.values():
            assert os.path.exists(path)
        assert "a,b" in open(paths["csv"]).read()

    def test_write_text_creates_parents(self, tmp_path):
        path = write_text(tmp_path / "deep" / "dir" / "f.txt", "hello")
        assert open(path).read() == "hello\n"

    def test_export_empty_stem_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            export_results(ResultTable(), tmp_path, "")
