"""Tests for the observability CLI: watch / history / ingest / dash."""

import json

import pytest

from repro.cli import main
from repro.observe.registry import load_registry


def run_json(capsys, argv):
    code = main(argv)
    out = capsys.readouterr().out
    return code, json.loads(out)


class TestWatch:
    def test_clean_scenario_is_healthy(self, capsys):
        assert main(["watch", "--scenario", "clean", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "looks healthy" in out

    def test_straggler_scenario_warns(self, capsys):
        code, payload = run_json(
            capsys, ["watch", "--scenario", "straggler", "--json"]
        )
        assert code == 1
        assert payload["schema"] == "repro.cli.watch/v1"
        assert payload["worst"] == "warn"
        assert payload["health"]["counts"].get("straggler", 0) >= 1
        flagged = {e["rank"] for e in payload["health"]["events"]
                   if e["kind"] == "straggler"}
        assert 0 in flagged  # the injected straggler is rank 0

    def test_degrade_scenario_is_critical(self, capsys):
        code, payload = run_json(
            capsys, ["watch", "--scenario", "degrade", "--json"]
        )
        assert code == 2
        assert payload["worst"] == "crit"
        assert payload["health"]["counts"].get("ckpt_degraded", 0) >= 1

    def test_diverge_scenario_flags_loss(self, capsys):
        code, payload = run_json(
            capsys, ["watch", "--scenario", "diverge", "--json"]
        )
        assert code >= 1
        kinds = set(payload["health"]["counts"])
        assert kinds & {"loss_divergence", "loss_nan"}

    def test_live_lines_stream_without_json(self, capsys):
        assert main(["watch", "--scenario", "straggler"]) == 1
        out = capsys.readouterr().out
        assert "rank" in out and "!! WARN straggler" in out

    def test_record_and_registry_outputs(self, tmp_path, capsys):
        record = tmp_path / "run.json"
        registry = tmp_path / "reg.jsonl"
        code = main([
            "watch", "--scenario", "straggler", "--quiet",
            "--record", str(record), "--registry", str(registry),
        ])
        assert code == 1
        payload = json.loads(record.read_text())
        assert payload["schema"] == "repro.analysis.record/v5"
        assert payload["health"]["counts"].get("straggler", 0) >= 1
        entries = load_registry(str(registry))
        assert len(entries) == 1
        assert entries[0].metrics.get("health.straggler", 0) >= 1

    def test_bad_threshold_rejected(self, capsys):
        assert main(["watch", "--straggler-factor", "0.5"]) == 2

    def test_runs_are_deterministic(self, capsys):
        _, one = run_json(capsys, ["watch", "--scenario", "crash", "--json"])
        _, two = run_json(capsys, ["watch", "--scenario", "crash", "--json"])
        assert one == two


@pytest.fixture
def registry_5(tmp_path, capsys):
    """A registry holding five identical clean-watch runs."""
    path = tmp_path / "reg.jsonl"
    for _ in range(5):
        main(["watch", "--scenario", "clean", "--quiet",
              "--registry", str(path)])
    capsys.readouterr()
    return path


class TestHistory:
    def test_clean_registry_exits_zero(self, registry_5, capsys):
        assert main(["history", "--registry", str(registry_5)]) == 0
        out = capsys.readouterr().out
        assert "verdict : ok" in out

    def test_missing_registry_exits_two(self, tmp_path, capsys):
        assert main(["history", "--registry",
                     str(tmp_path / "nope.jsonl")]) == 2

    def test_injected_drift_exits_two(self, registry_5, capsys):
        lines = registry_5.read_text().strip().splitlines()
        entry = json.loads(lines[-1])
        entry["metrics"]["makespan_s"] *= 1.5
        registry_5.write_text(
            "\n".join(lines[:-1] + [json.dumps(entry)]) + "\n"
        )
        assert main(["history", "--registry", str(registry_5)]) == 2
        err = capsys.readouterr().err
        assert "DRIFT" in err and "makespan_s" in err

    def test_json_output(self, registry_5, capsys):
        code, payload = run_json(
            capsys, ["history", "--registry", str(registry_5), "--json"]
        )
        assert code == 0
        assert payload["schema"] == "repro.cli.history/v1"
        assert payload["worst"] == "ok"
        assert any(t["metric"] == "makespan_s" for t in payload["trends"])

    def test_series_filter(self, registry_5, capsys):
        assert main(["history", "--registry", str(registry_5),
                     "--series", "no-such-series"]) == 2


class TestIngest:
    def test_bench_files_ingest(self, tmp_path, capsys):
        registry = tmp_path / "reg.jsonl"
        assert main(["ingest", "benchmarks/BENCH_observe.json",
                     "benchmarks/BENCH_search.json",
                     "--registry", str(registry)]) == 0
        entries = load_registry(str(registry))
        assert {e.series for e in entries} == {"bench:observe",
                                               "bench:search"}

    def test_unknown_schema_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "mystery/v1"}')
        registry = tmp_path / "reg.jsonl"
        assert main(["ingest", str(bad), "--registry", str(registry)]) == 2
        assert load_registry(str(registry)) == []

    def test_cli_wrapper_unwrapped(self, tmp_path, capsys):
        bench = json.load(open("benchmarks/BENCH_observe.json"))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({
            "schema": "repro.cli.bench/v1",
            "record": bench,
            "gate": {"status": "pass"},
        }))
        registry = tmp_path / "reg.jsonl"
        assert main(["ingest", str(wrapped),
                     "--registry", str(registry)]) == 0
        assert load_registry(str(registry))[0].series == "bench:observe"


class TestDash:
    def test_writes_selfcontained_html(self, registry_5, tmp_path, capsys):
        record = tmp_path / "run.json"
        main(["watch", "--scenario", "degrade", "--quiet",
              "--record", str(record)])
        out = tmp_path / "dash.html"
        assert main(["dash", "--registry", str(registry_5),
                     "--records", str(record),
                     "--out", str(out)]) == 0
        html = out.read_text()
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "<svg" in html  # sparklines render inline
        assert "ckpt_degraded" in html  # health timeline marks
        assert "makespan_s" in html
        assert "http" not in html.split("</style>")[-1]  # no external assets

    def test_committed_registry_renders(self, tmp_path, capsys):
        out = tmp_path / "dash.html"
        assert main(["dash", "--registry", "benchmarks/REGISTRY.jsonl",
                     "--out", str(out)]) == 0
        assert "bench:observe" in out.read_text()


class TestJsonSatellites:
    def test_faults_json(self, capsys):
        code, payload = run_json(capsys, ["faults", "--json"])
        assert code == 0
        assert payload["schema"] == "repro.cli.faults/v1"
        assert payload["recovered"] is True
        assert payload["plan"]["crashes"] == 1
        assert "dropped" in payload

    def test_chaos_json(self, capsys):
        code, payload = run_json(
            capsys, ["chaos", "--trials", "0", "--steps", "4", "--json"]
        )
        assert code == 0
        assert payload["verdict"]
        assert {t["trial"] for t in payload["trials"]} >= {"clean", "crash-1"}
        assert all("dropped" in t for t in payload["trials"])
