"""Tests for the extended collectives: Rabenseifner all-reduce, scatter,
reduce — results, timings, and cost formulas."""

import numpy as np
import pytest

from repro.collectives.cost import (
    allreduce_rabenseifner,
    allreduce_ring,
    reduce_binomial,
    scatter_linear,
)
from repro.errors import RankFailedError
from repro.machine.params import cori_knl
from repro.simmpi.engine import SimEngine

M = cori_knl()
SIZES = [1, 2, 3, 4, 5, 7, 8, 9, 16]


class TestRabenseifnerResults:
    @pytest.mark.parametrize("size", SIZES)
    def test_sums_correctly(self, size):
        rng = np.random.default_rng(size)
        data = rng.standard_normal((size, 41))

        def prog(comm):
            return comm.allreduce(data[comm.rank].copy(), algorithm="rabenseifner")

        res = SimEngine(size).run(prog)
        for value in res.values:
            np.testing.assert_allclose(value, data.sum(axis=0), rtol=1e-12)

    @pytest.mark.parametrize("size", [2, 4, 8])
    def test_matches_ring_result(self, size):
        rng = np.random.default_rng(7)
        data = rng.standard_normal((size, 100))

        def prog(comm):
            a = comm.allreduce(data[comm.rank].copy(), algorithm="rabenseifner")
            b = comm.allreduce(data[comm.rank].copy(), algorithm="ring")
            return np.max(np.abs(a - b))

        res = SimEngine(size).run(prog)
        assert max(res.values) < 1e-12

    def test_small_array_fewer_elements_than_ranks(self):
        def prog(comm):
            return comm.allreduce(np.array([1.0]), algorithm="rabenseifner")

        res = SimEngine(8).run(prog)
        assert res[0][0] == pytest.approx(8.0)


class TestRabenseifnerTiming:
    def test_emergent_timing_matches_formula_pof2(self):
        p, n = 8, 100_000

        def prog(comm):
            comm.allreduce(np.ones(n, dtype=np.float32), algorithm="rabenseifner")
            return comm.clock

        simulated = SimEngine(p, M).run(prog).time
        predicted = allreduce_rabenseifner(p, n, M).total
        assert simulated == pytest.approx(predicted, rel=0.01)

    def test_lower_latency_than_exact_ring(self):
        """Rabenseifner's log-latency beats the ring's linear latency —
        the reason the paper's ceil(log P) convention is defensible."""
        p = 64
        assert (
            allreduce_rabenseifner(p, 100, M).total
            < allreduce_ring(p, 100, M, exact_latency=True).total
        )

    def test_same_bandwidth_as_ring(self):
        c1 = allreduce_rabenseifner(16, 10**6, M)
        c2 = allreduce_ring(16, 10**6, M)
        assert c1.bandwidth == pytest.approx(c2.bandwidth)


class TestScatter:
    @pytest.mark.parametrize("size", [1, 2, 5, 8])
    def test_each_rank_gets_its_block(self, size):
        def prog(comm):
            blocks = None
            if comm.rank == 0:
                blocks = [np.full(3, float(i)) for i in range(comm.size)]
            return comm.scatter(blocks, root=0)

        res = SimEngine(size).run(prog)
        for rank, value in enumerate(res.values):
            np.testing.assert_array_equal(value, np.full(3, float(rank)))

    def test_nonzero_root(self):
        def prog(comm):
            blocks = [f"b{i}" for i in range(comm.size)] if comm.rank == 2 else None
            return comm.scatter(blocks, root=2)

        res = SimEngine(4).run(prog)
        assert list(res.values) == ["b0", "b1", "b2", "b3"]

    def test_wrong_block_count_rejected(self):
        def prog(comm):
            blocks = ["only-one"] if comm.rank == 0 else None
            comm.scatter(blocks, root=0)

        with pytest.raises(RankFailedError):
            SimEngine(3).run(prog)

    def test_cost_formula(self):
        c = scatter_linear(8, 8000, M)
        assert c.latency == pytest.approx(7 * M.alpha)
        assert c.bandwidth == pytest.approx(M.beta * 8000 * 7 / 8)


class TestReduce:
    @pytest.mark.parametrize("size", SIZES)
    def test_root_gets_sum_others_none(self, size):
        rng = np.random.default_rng(size)
        data = rng.standard_normal((size, 9))
        root = size // 2

        def prog(comm):
            return comm.reduce(data[comm.rank].copy(), root=root)

        res = SimEngine(size).run(prog)
        np.testing.assert_allclose(res[root], data.sum(axis=0), rtol=1e-12)
        for rank, value in enumerate(res.values):
            if rank != root:
                assert value is None

    def test_rejects_non_array(self):
        def prog(comm):
            comm.reduce([1, 2])  # type: ignore[arg-type]

        with pytest.raises(RankFailedError):
            SimEngine(2).run(prog)

    def test_cost_formula(self):
        c = reduce_binomial(8, 1000, M)
        assert c.latency == pytest.approx(3 * M.alpha)
        assert c.bandwidth == pytest.approx(3 * M.beta * 1000)
