"""Tests for the ASCII trace renderers in repro.report.timeline."""

import pytest

from repro.errors import ConfigurationError
from repro.report.timeline import (
    render_fault_log,
    render_span_timeline,
    render_timeline,
    render_traffic_matrix,
    traffic_matrix,
)
from repro.simmpi.tracing import TraceEvent


def _ev(rank, op, peer, t0, t1, nbytes=8, tag=(), span=()):
    return TraceEvent(
        rank=rank, op=op, peer=peer, nbytes=nbytes,
        t_start=t0, t_end=t1, tag=tag, span=span,
    )


P2P = (
    _ev(0, "send", 1, 0.0, 0.1),
    _ev(0, "recv", 1, 0.1, 6.0),
    _ev(1, "recv", 0, 0.0, 3.0),
    _ev(1, "send", 0, 4.5, 4.6),
)

FAULTS = (
    _ev(0, "fault.crash", -1, 2.0, 2.0),
    _ev(1, "fault.transient", 0, 1.0, 1.0),
    _ev(1, "fault.recovery", -1, 4.0, 4.0, tag=(3,)),
)


class TestRenderTimeline:
    def test_rows_and_marks(self):
        out = render_timeline(P2P, width=24)
        lines = out.splitlines()
        assert "rank   0 |" in lines[1]
        assert "rank   1 |" in lines[2]
        # rank 0's send and recv share the first column -> "x"; rank 1's
        # send lands after its recv interval -> separate marks.
        assert "x" in lines[1] and "r" in lines[1]
        assert "r" in lines[2] and "s" in lines[2]

    def test_fault_overprint(self):
        out = render_timeline(P2P + FAULTS, width=24)
        assert "!" in out

    def test_empty_trace_placeholder(self):
        assert "no point-to-point" in render_timeline(())

    def test_width_validated(self):
        with pytest.raises(ConfigurationError):
            render_timeline(P2P, width=5)

    def test_explicit_rank_order(self):
        out = render_timeline(P2P, width=24, ranks=[1, 0])
        lines = out.splitlines()
        assert lines[1].startswith("rank   1")


class TestRenderFaultLog:
    def test_chronological_lines(self):
        out = render_fault_log(P2P + FAULTS)
        lines = out.splitlines()
        assert len(lines) == 3
        assert "transient" in lines[0]
        assert "crash" in lines[1]
        assert "recovery" in lines[2] and "3 survivors" in lines[2]

    def test_no_faults_placeholder(self):
        assert "no fault events" in render_fault_log(P2P)


class TestRenderSpanTimeline:
    SPANS = (
        _ev(0, "span", -1, 0.0, 2.0, span=("step[step=0]",)),
        _ev(0, "span", -1, 2.0, 4.0, span=("step[step=1]",)),
        _ev(1, "span", -1, 0.0, 4.0, span=("step[step=0]",)),
    )

    def test_rows_per_rank_and_span(self):
        out = render_span_timeline(self.SPANS, width=20)
        assert "rank 0 step" in out
        assert "rank 1 step" in out
        assert "#" in out

    def test_no_spans_placeholder(self):
        assert "no spans recorded" in render_span_timeline(P2P)

    def test_width_validated(self):
        with pytest.raises(ConfigurationError):
            render_span_timeline(self.SPANS, width=2)

    def test_fault_overprint(self):
        out = render_span_timeline(self.SPANS + FAULTS[:1], width=20)
        assert "!" in out


class TestTrafficMatrix:
    def test_bytes_per_pair(self):
        m = traffic_matrix(P2P + (_ev(0, "send", 1, 6.0, 6.1, nbytes=24),))
        assert m[0][1] == 32
        assert m[1][0] == 8

    def test_collectives_and_faults_ignored(self):
        events = (_ev(0, "allreduce", -1, 0.0, 1.0), FAULTS[0])
        assert traffic_matrix(events) == {}


class TestRenderTrafficMatrix:
    def test_heatmap_shape(self):
        out = render_traffic_matrix(traffic_matrix(P2P))
        lines = out.splitlines()
        assert "src\\dst" in lines[1]
        assert lines[1].count("|") == 1
        # One row per rank appearing as source or destination.
        assert any(line.strip().startswith("0 |") for line in lines)
        assert any(line.strip().startswith("1 |") for line in lines)

    def test_zero_cells_render_dots(self):
        out = render_traffic_matrix({0: {1: 1024}})
        # The (0, 0) and diagonal cells carry no traffic.
        assert "." in out
        assert "1.0" in out  # 1024 bytes = 1.0 KiB

    def test_peak_gets_darkest_shade(self):
        out = render_traffic_matrix({0: {1: 10240, 2: 512}})
        assert "@" in out

    def test_small_nonzero_cell_still_shaded(self):
        out = render_traffic_matrix({0: {1: 1, 2: 10_000_000}})
        row = next(line for line in out.splitlines() if line.strip().startswith("0 |"))
        # The tiny cell must not be blank: the lightest shade is ".".
        assert row.count(".") >= 1

    def test_empty_placeholder(self):
        assert "no point-to-point" in render_traffic_matrix({})
        assert "no point-to-point" in render_traffic_matrix({0: {}})

    def test_explicit_ranks_add_silent_rows(self):
        out = render_traffic_matrix({0: {1: 64}}, ranks=[0, 1, 2])
        assert sum(1 for line in out.splitlines() if "|" in line) == 1 + 3
