"""Golden-value regression tests for the Eq. 3/4/8/9 cost model.

``tests/golden/alexnet_cost_tables.json`` freezes every cost term of
the Table-1 AlexNet configuration (B = 2048, Cori-KNL) on five grid
shapes of P = 512, as ``float.hex()`` strings.  These tests assert
**exact** equality — any diff is a cost-model change and must be made
deliberately by re-running ``tests/golden/generate_golden.py`` and
reviewing the numbers.  The same frozen values also pin the memoized
search engine and the vectorized grid tables, proving all three paths
(serial, cached, vectorized) agree bit-for-bit with history.
"""

import json
import os

import pytest

from repro.core.costs import integrated_cost
from repro.core.strategy import ProcessGrid, Strategy
from repro.experiments.common import default_setting
from repro.search import SearchEngine
from repro.search.tables import family_cost_table

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "alexnet_cost_tables.json"
)

with open(GOLDEN_PATH, "r", encoding="utf-8") as _fh:
    GOLDEN = json.load(_fh)

SETTING = default_setting()
CASE_IDS = [f"{c['family']}-{c['grid'][0]}x{c['grid'][1]}" for c in GOLDEN["cases"]]


def _strategy(case):
    grid = ProcessGrid(*case["grid"])
    return getattr(Strategy, case["family"])(SETTING.network, grid)


def test_golden_machine_constants_unchanged():
    assert GOLDEN["network"] == SETTING.network.name
    assert GOLDEN["machine"] == SETTING.machine.name
    assert float.fromhex(GOLDEN["alpha"]) == SETTING.machine.alpha
    assert float.fromhex(GOLDEN["beta_per_byte"]) == SETTING.machine.beta_per_byte


def test_golden_covers_five_grids_and_three_families():
    grids = {tuple(c["grid"]) for c in GOLDEN["cases"]}
    assert grids == {(1, 512), (2, 256), (16, 32), (64, 8), (512, 1)}
    assert {c["family"] for c in GOLDEN["cases"]} == {
        "same_grid_model", "conv_batch_fc_model", "conv_domain_fc_model"
    }


@pytest.mark.parametrize("case", GOLDEN["cases"], ids=CASE_IDS)
def test_serial_cost_terms_match_golden_exactly(case):
    breakdown = integrated_cost(
        SETTING.network, GOLDEN["batch"], _strategy(case), SETTING.machine
    )
    assert breakdown.total.hex() == case["total"]
    assert breakdown.latency.hex() == case["latency"]
    assert breakdown.bandwidth.hex() == case["bandwidth"]
    assert len(breakdown.terms) == len(case["terms"])
    for term, expected in zip(breakdown.terms, case["terms"]):
        assert term.layer == expected["layer"]
        assert term.category == expected["category"]
        assert term.cost.latency.hex() == expected["latency"], (
            f"{term.layer}/{term.category}: latency drifted from golden"
        )
        assert term.cost.bandwidth.hex() == expected["bandwidth"], (
            f"{term.layer}/{term.category}: bandwidth drifted from golden"
        )
        assert float(term.volume).hex() == expected["volume"]


@pytest.mark.parametrize("case", GOLDEN["cases"], ids=CASE_IDS)
def test_engine_cached_terms_match_golden_exactly(case):
    engine = SearchEngine()
    breakdown = engine.integrated_cost(
        SETTING.network, GOLDEN["batch"], _strategy(case), SETTING.machine
    )
    assert breakdown.total.hex() == case["total"]
    for term, expected in zip(breakdown.terms, case["terms"]):
        assert term.cost.latency.hex() == expected["latency"]
        assert term.cost.bandwidth.hex() == expected["bandwidth"]
        assert float(term.volume).hex() == expected["volume"]


@pytest.mark.parametrize("family", sorted({c["family"] for c in GOLDEN["cases"]}))
def test_vectorized_table_matches_golden_exactly(family):
    """One numpy table over all five golden grids == the frozen scalars."""
    cases = {
        tuple(c["grid"]): c for c in GOLDEN["cases"] if c["family"] == family
    }
    grids = [ProcessGrid(*g) for g in sorted(cases)]
    strategy = getattr(Strategy, family)(SETTING.network, grids[0])
    table = family_cost_table(
        SETTING.network,
        GOLDEN["batch"],
        grids,
        SETTING.machine,
        placements=strategy.placements,
        compute_time=0.0,
        iterations=1.0,
    )
    for i, grid in enumerate(grids):
        case = cases[(grid.pr, grid.pc)]
        assert float(table.comm_total[i]).hex() == case["total"]
        assert float(table.comm_latency[i]).hex() == case["latency"]
        assert float(table.comm_bandwidth[i]).hex() == case["bandwidth"]
