"""Tests for Eq. 5 (crossover) and Eq. 6 (redistribution)."""

import pytest
from hypothesis import given, strategies as st

from repro.collectives.cost import allgather_bruck
from repro.core.ratio import batch_model_volume_ratio, crossover_batch_size, favors_batch
from repro.core.redistribution import redistribution_cost, redistribution_relative_overhead
from repro.errors import ConfigurationError
from repro.machine.params import cori_knl
from repro.nn import alexnet

M = cori_knl()
UNGROUPED = alexnet(grouped=False)
CONV4 = next(w for w in UNGROUPED.weighted_layers if w.name == "conv4")


class TestEq5:
    def test_conv4_crossover_near_paper_claim(self):
        """Sec. 2.2: model parallelism wins for B <= 12 on conv4.

        Literal Eq. 5 gives B* = 2*3*3*384 / (3*13*13) = 13.63; the
        paper's 'B <= 12' is consistent with that threshold.
        """
        bstar = crossover_batch_size(CONV4)
        assert bstar == pytest.approx(2 * 3 * 3 * 384 / (3 * 13 * 13))
        assert 12 <= bstar <= 14

    def test_conv4_formula_matches_kernel_form(self):
        """2|W|/(3d) == 2 kh kw XC / (3 YH YW) for ungrouped convs."""
        w = CONV4
        kernel_form = 2 * w.kernel_h * w.kernel_w * w.in_shape.channels / (
            3 * w.out_shape.height * w.out_shape.width
        )
        assert crossover_batch_size(w) == pytest.approx(kernel_form)

    def test_model_favourable_below_crossover(self):
        assert not favors_batch(CONV4, 12)
        assert favors_batch(CONV4, 14)

    def test_fc_layers_strongly_favor_model_at_small_batch(self):
        """FC layers have huge |W| relative to d: batch only wins at
        very large batch sizes."""
        fc6 = next(w for w in UNGROUPED.weighted_layers if w.name == "fc6")
        assert crossover_batch_size(fc6) > 1000

    def test_ratio_definition(self):
        assert batch_model_volume_ratio(CONV4, 64) == pytest.approx(
            2 * CONV4.weights / (3 * 64 * CONV4.d_out)
        )

    def test_ratio_validation(self):
        with pytest.raises(ConfigurationError):
            batch_model_volume_ratio(CONV4, 0)

    @given(batch=st.floats(min_value=0.1, max_value=1e6))
    def test_ratio_inverse_in_batch(self, batch):
        r1 = batch_model_volume_ratio(CONV4, batch)
        r2 = batch_model_volume_ratio(CONV4, 2 * batch)
        assert r2 == pytest.approx(r1 / 2)


class TestEq6:
    def test_cost_is_one_allgather_of_the_input(self):
        w = UNGROUPED.weighted_layers[2]  # conv3
        got = redistribution_cost(w, 256, 16, M)
        expected = allgather_bruck(16, 256 * w.d_in, M)
        assert got.total == pytest.approx(expected.total)

    def test_asymptotically_free_bound(self):
        """The paper: redistribution is 1/3 of the subsequent model step."""
        for w in UNGROUPED.weighted_layers:
            rel = redistribution_relative_overhead(w, 2048, 512, M)
            assert rel == pytest.approx(1.0 / 3.0)

    def test_single_process_free(self):
        w = UNGROUPED.weighted_layers[0]
        assert redistribution_cost(w, 256, 1, M).total == 0.0
        assert redistribution_relative_overhead(w, 256, 1, M) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            redistribution_cost(UNGROUPED.weighted_layers[0], 0, 8, M)

    @given(p=st.integers(2, 1024), batch=st.integers(1, 4096))
    def test_overhead_never_exceeds_one_third(self, p, batch):
        w = UNGROUPED.weighted_layers[3]
        assert redistribution_relative_overhead(w, batch, p, M) <= 1.0 / 3.0 + 1e-12
