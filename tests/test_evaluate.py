"""Tests for model evaluation (repro.dist.evaluate)."""

import pytest

from repro.data.synthetic import separable_blobs
from repro.dist.evaluate import distributed_mlp_accuracy, mlp_accuracy, mlp_predict
from repro.dist.train import MLPParams, serial_mlp_train
from repro.errors import ShapeError


X, Y = separable_blobs(10, 120, 4, seed=17)
PARAMS = MLPParams.init([10, 24, 4], seed=2)


class TestSerialAccuracy:
    def test_predictions_shape(self):
        preds = mlp_predict(PARAMS, X)
        assert preds.shape == (120,)
        assert preds.dtype.kind in "iu"

    def test_accuracy_in_unit_interval(self):
        acc = mlp_accuracy(PARAMS, X, Y)
        assert 0.0 <= acc <= 1.0

    def test_training_improves_accuracy(self):
        before = mlp_accuracy(PARAMS, X, Y)
        trained, _ = serial_mlp_train(PARAMS, X, Y, batch=24, steps=40, lr=0.2)
        after = mlp_accuracy(trained, X, Y)
        assert after > before
        assert after > 0.9  # blobs are separable

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            mlp_predict(PARAMS, X[0])
        with pytest.raises(ShapeError):
            mlp_accuracy(PARAMS, X, Y[:-1])


class TestDistributedAccuracy:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7])
    def test_matches_serial(self, p):
        serial = mlp_accuracy(PARAMS, X, Y)
        dist, run = distributed_mlp_accuracy(PARAMS, X, Y, p=p)
        assert dist == pytest.approx(serial)

    def test_only_count_allreduce_communicates(self):
        """Inference communicates two scalars per rank, nothing more —
        'the forward pass of batch parallel training needs no
        communication' (paper Sec. 2.2)."""
        from repro.machine.params import cori_knl
        from repro.simmpi.engine import SimEngine
        from repro.dist.evaluate import _accuracy_program

        engine = SimEngine(4, cori_knl(), trace=True)
        engine.run(_accuracy_program, PARAMS, X, Y)
        sent = engine.tracer.total_bytes("send")
        # Ring all-reduce of a 2-float vector: 2*(p-1) messages of <= 2
        # float64s per rank.
        assert sent <= 4 * 2 * 3 * 16

    def test_uneven_shard_sizes(self):
        x, y = separable_blobs(10, 121, 4, seed=18)  # 121 % 4 != 0
        serial = mlp_accuracy(PARAMS, x, y)
        dist, _ = distributed_mlp_accuracy(PARAMS, x, y, p=4)
        assert dist == pytest.approx(serial)
