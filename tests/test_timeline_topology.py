"""Tests for the trace timeline renderer and the topology presets."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.params import cori_knl
from repro.machine.topology import dragonfly, fat_tree, torus3d
from repro.report.timeline import render_timeline, traffic_matrix
from repro.simmpi.engine import SimEngine


def traced_run(size, prog):
    engine = SimEngine(size, cori_knl(), trace=True)
    engine.run(prog)
    return engine.tracer.events


class TestTimeline:
    def test_renders_one_row_per_rank(self):
        def prog(comm):
            comm.allreduce(np.ones(1000, dtype=np.float32))

        events = traced_run(4, prog)
        text = render_timeline(events)
        assert text.count("rank") == 4
        assert "s" in text and "r" in text

    def test_empty_trace(self):
        assert "no point-to-point" in render_timeline([])

    def test_width_validation(self):
        with pytest.raises(ConfigurationError):
            render_timeline([], width=2)

    def test_idle_rank_is_dots(self):
        def prog(comm):
            if comm.rank < 2:
                if comm.rank == 0:
                    comm.send(np.ones(100), 1)
                else:
                    comm.recv(0)

        events = traced_run(3, prog)
        text = render_timeline(events, ranks=[2])
        row = [ln for ln in text.splitlines() if ln.startswith("rank   2")][0]
        assert set(row.split("|")[1]) == {"."}


class TestTrafficMatrix:
    def test_ring_allreduce_talks_to_neighbours_only(self):
        """The ring's structure, read off the trace: every rank sends
        only to (rank + 1) mod P."""

        def prog(comm):
            comm.allreduce(np.ones(4000, dtype=np.float32), algorithm="ring")

        events = traced_run(4, prog)
        matrix = traffic_matrix(events)
        for src, row in matrix.items():
            assert set(row) == {(src + 1) % 4}

    def test_halo_exchange_talks_to_both_neighbours(self):
        from repro.dist.conv_domain import DomainConv2D
        from repro.dist.partition import BlockPartition

        x = np.random.default_rng(0).standard_normal((1, 2, 8, 4))
        part = BlockPartition(8, 4)

        def prog(comm):
            op = DomainConv2D(comm, 8, 3, 3)
            op.forward(part.take(x, comm.rank, axis=2), np.zeros((2, 2, 3, 3)))

        matrix = traffic_matrix(traced_run(4, prog))
        assert set(matrix[1]) == {0, 2}
        assert set(matrix[0]) == {1}
        assert set(matrix[3]) == {2}

    def test_volumes_symmetric_for_stride1_halo(self):
        from repro.dist.conv_domain import DomainConv2D
        from repro.dist.partition import BlockPartition

        x = np.random.default_rng(0).standard_normal((1, 2, 8, 4))
        part = BlockPartition(8, 2)

        def prog(comm):
            op = DomainConv2D(comm, 8, 3, 3)
            op.forward(part.take(x, comm.rank, axis=2), np.zeros((2, 2, 3, 3)))

        matrix = traffic_matrix(traced_run(2, prog))
        assert matrix[0][1] == matrix[1][0]


class TestTopologyPresets:
    BASE = cori_knl()

    def test_fat_tree_derates_both(self):
        m = fat_tree(self.BASE, levels=3, utilization=0.5)
        assert m.alpha == pytest.approx(3 * self.BASE.alpha)
        assert m.bandwidth == pytest.approx(0.5 * self.BASE.bandwidth)

    def test_dragonfly(self):
        m = dragonfly(self.BASE, global_contention=0.5)
        assert m.alpha == pytest.approx(2 * self.BASE.alpha)
        assert m.bandwidth == pytest.approx(0.5 * self.BASE.bandwidth)

    def test_torus_latency_grows_with_size(self):
        small = torus3d(self.BASE, nodes=64)
        big = torus3d(self.BASE, nodes=4096)
        assert big.alpha > small.alpha

    @pytest.mark.parametrize(
        "fn,kwargs",
        [
            (fat_tree, dict(levels=0)),
            (fat_tree, dict(utilization=0.0)),
            (dragonfly, dict(global_contention=1.5)),
            (torus3d, dict(nodes=0)),
            (torus3d, dict(nodes=8, link_sharing=0)),
        ],
    )
    def test_validation(self, fn, kwargs):
        with pytest.raises(ConfigurationError):
            fn(self.BASE, **kwargs)

    def test_derated_machine_slows_the_cost_model(self):
        """Folding topology into (alpha, beta) flows straight through
        the Eq. 4 cost — the paper's Limitations prescription."""
        from repro.core.costs import batch_parallel_cost
        from repro.nn import alexnet

        net = alexnet()
        base_cost = batch_parallel_cost(net, 64, self.BASE).total
        slow_cost = batch_parallel_cost(net, 64, dragonfly(self.BASE)).total
        assert slow_cost > base_cost

class TestFaultRendering:
    def _traced_faulty_run(self):
        from repro.simmpi.faults import FaultPlan, TransientFault

        plan = FaultPlan(transients=(TransientFault(0, send_index=0, attempts=1),))
        eng = SimEngine(2, faults=plan, trace=True)

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.ones(64), 1)
            else:
                comm.recv(0)

        eng.run(prog)
        return eng.tracer.canonical()

    def test_timeline_marks_faults(self):
        out = render_timeline(self._traced_faulty_run())
        assert "!=fault" in out
        assert "!" in out.splitlines()[1]  # rank 0's row carries the mark

    def test_fault_log_lines(self):
        from repro.report.timeline import render_fault_log

        out = render_fault_log(self._traced_faulty_run())
        assert "transient" in out and "retry" in out and "backoff" in out
        assert "rank   0" in out

    def test_fault_log_empty(self):
        from repro.report.timeline import render_fault_log

        assert "no fault events" in render_fault_log([])
