"""Tests for the serial reference layer numerics (repro.dist.layers)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.layers import (
    col2im,
    conv2d_backward,
    conv2d_forward,
    im2col,
    maxpool2d_backward,
    maxpool2d_forward,
    relu,
    relu_grad,
)
from repro.errors import ShapeError

RNG = np.random.default_rng(0)


def conv2d_bruteforce(x, w, stride=1, pad=0):
    """O(everything) loop implementation used as the oracle."""
    b, c, h, wd = x.shape
    f, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    hout = (h + 2 * pad - kh) // stride + 1
    wout = (wd + 2 * pad - kw) // stride + 1
    y = np.zeros((b, f, hout, wout))
    for bi in range(b):
        for fi in range(f):
            for i in range(hout):
                for j in range(wout):
                    patch = xp[bi, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    y[bi, fi, i, j] = np.sum(patch * w[fi])
    return y


class TestRelu:
    def test_values(self):
        x = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_array_equal(relu(x), [0.0, 0.0, 3.0])

    def test_grad_masks_nonpositive(self):
        x = np.array([-1.0, 0.0, 2.0])
        dy = np.ones(3)
        np.testing.assert_array_equal(relu_grad(x, dy), [0.0, 0.0, 1.0])


class TestConvForward:
    @pytest.mark.parametrize(
        "shape,kernel,stride,pad",
        [
            ((2, 3, 8, 8), (4, 3, 3, 3), 1, 1),
            ((1, 1, 5, 5), (2, 1, 3, 3), 1, 0),
            ((2, 2, 9, 9), (3, 2, 3, 3), 2, 1),
            ((1, 3, 11, 11), (2, 3, 5, 5), 2, 2),
            ((2, 4, 6, 6), (4, 4, 1, 1), 1, 0),
        ],
    )
    def test_matches_bruteforce(self, shape, kernel, stride, pad):
        x = RNG.standard_normal(shape)
        w = RNG.standard_normal(kernel)
        got = conv2d_forward(x, w, stride=stride, pad=pad)
        np.testing.assert_allclose(got, conv2d_bruteforce(x, w, stride, pad), atol=1e-12)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            conv2d_forward(np.zeros((1, 3, 8, 8)), np.zeros((2, 4, 3, 3)))

    def test_bad_weight_rank_rejected(self):
        with pytest.raises(ShapeError):
            conv2d_forward(np.zeros((1, 3, 8, 8)), np.zeros((2, 3, 3)))


class TestConvBackward:
    @pytest.mark.parametrize(
        "shape,kernel,stride,pad",
        [
            ((2, 2, 6, 6), (3, 2, 3, 3), 1, 1),
            ((1, 1, 7, 7), (2, 1, 3, 3), 2, 1),
            ((2, 3, 5, 5), (2, 3, 1, 1), 1, 0),
        ],
    )
    def test_gradients_numerically(self, shape, kernel, stride, pad):
        """Central-difference check of both dx and dw."""
        x = RNG.standard_normal(shape)
        w = 0.5 * RNG.standard_normal(kernel)
        dy = RNG.standard_normal(conv2d_forward(x, w, stride, pad).shape)
        dx, dw = conv2d_backward(x, w, dy, stride, pad)

        eps = 1e-6

        def loss(xx, ww):
            return float(np.sum(conv2d_forward(xx, ww, stride, pad) * dy))

        for idx in [(0, 0, 1, 1), tuple(np.unravel_index(x.size // 2, x.shape))]:
            xp, xm = x.copy(), x.copy()
            xp[idx] += eps
            xm[idx] -= eps
            num = (loss(xp, w) - loss(xm, w)) / (2 * eps)
            assert dx[idx] == pytest.approx(num, rel=1e-4, abs=1e-6)
        for idx in [(0, 0, 0, 0), tuple(np.unravel_index(w.size - 1, w.shape))]:
            wp, wm = w.copy(), w.copy()
            wp[idx] += eps
            wm[idx] -= eps
            num = (loss(x, wp) - loss(x, wm)) / (2 * eps)
            assert dw[idx] == pytest.approx(num, rel=1e-4, abs=1e-6)


class TestIm2Col:
    @given(
        b=st.integers(1, 3),
        c=st.integers(1, 3),
        h=st.integers(3, 8),
        w=st.integers(3, 8),
        k=st.sampled_from([1, 3]),
    )
    @settings(max_examples=30, deadline=None)
    def test_col2im_is_adjoint_of_im2col(self, b, c, h, w, k):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint identity
        that makes the conv backward pass exact."""
        pad = k // 2
        x = RNG.standard_normal((b, c, h, w))
        cols = im2col(x, k, k, 1, pad, pad)
        y = RNG.standard_normal(cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, k, k, 1, pad, pad)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_rejects_non_nchw(self):
        with pytest.raises(ShapeError):
            im2col(np.zeros((3, 8, 8)), 3, 3)

    def test_kernel_larger_than_input(self):
        with pytest.raises(ShapeError):
            im2col(np.zeros((1, 1, 2, 2)), 5, 5)


class TestMaxPool:
    def test_forward_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y, arg = maxpool2d_forward(x, 2)
        np.testing.assert_array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        y, arg = maxpool2d_forward(x, 2)
        dy = np.ones_like(y)
        dx = maxpool2d_backward(dy, arg, x.shape, 2)
        assert dx.sum() == 4
        assert dx[0, 0, 1, 1] == 1.0 and dx[0, 0, 0, 0] == 0.0

    def test_gradient_numerically(self):
        x = RNG.standard_normal((2, 3, 4, 4))
        dy = RNG.standard_normal((2, 3, 2, 2))
        y, arg = maxpool2d_forward(x, 2)
        dx = maxpool2d_backward(dy, arg, x.shape, 2)
        eps = 1e-6
        idx = (1, 2, 3, 1)
        xp, xm = x.copy(), x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        fp = float(np.sum(maxpool2d_forward(xp, 2)[0] * dy))
        fm = float(np.sum(maxpool2d_forward(xm, 2)[0] * dy))
        assert dx[idx] == pytest.approx((fp - fm) / (2 * eps), abs=1e-5)

    def test_rejects_overlapping_windows(self):
        with pytest.raises(ShapeError):
            maxpool2d_forward(np.zeros((1, 1, 4, 4)), 3, 2)

    def test_rejects_misaligned_dims(self):
        with pytest.raises(ShapeError):
            maxpool2d_forward(np.zeros((1, 1, 5, 4)), 2)
