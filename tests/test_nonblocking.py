"""Tests for non-blocking point-to-point (isend/irecv) and the overlap
timing semantics the paper's halo-exchange argument relies on."""

import numpy as np
import pytest

from repro.errors import RankFailedError
from repro.machine.params import MachineParams
from repro.simmpi.engine import SimEngine

SLOW = MachineParams(alpha=1.0, beta_per_byte=0.0)  # 1s latency, free bandwidth


class TestBasics:
    def test_isend_irecv_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(np.arange(4.0), 1)
                assert req.wait() is None
                return None
            req = comm.irecv(0)
            return req.wait()

        res = SimEngine(2).run(prog)
        np.testing.assert_array_equal(res[1], np.arange(4.0))

    def test_send_request_completes_immediately(self):
        def prog(comm):
            if comm.rank == 0:
                return comm.isend(b"x", 1).completed
            return comm.recv(0) and True

        assert SimEngine(2).run(prog)[0] is True

    def test_test_probe_does_not_consume(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(7, 1)
                return None
            req = comm.irecv(0)
            # Busy-probe until arrival, then wait must still deliver.
            import time

            for _ in range(200):
                if req.test():
                    break
                time.sleep(0.005)
            return req.wait()

        assert SimEngine(2).run(prog)[1] == 7

    def test_wait_twice_returns_same_payload(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send([1, 2], 1)
                return None
            req = comm.irecv(0)
            first = req.wait()
            return first, req.wait()

        a, b = SimEngine(2).run(prog)[1]
        assert a == b == [1, 2]

    def test_irecv_unmatched_deadlocks(self):
        def prog(comm):
            if comm.rank == 1:
                comm.irecv(0).wait()

        with pytest.raises(RankFailedError):
            SimEngine(2, timeout=0.3).run(prog)


class TestOverlapTiming:
    def test_compute_overlaps_message_flight(self):
        """Posting irecv, computing 1s, then waiting on a 1s-latency
        message costs max(compute, flight) = 1s, not 2s — the paper's
        non-blocking-halo mechanism."""

        def overlapped(comm):
            if comm.rank == 0:
                comm.send(b"halo", 1)
            else:
                req = comm.irecv(0)
                comm.advance(1.0)  # interior convolution
                req.wait()
            return comm.clock

        res = SimEngine(2, SLOW).run(overlapped)
        assert res.values[1] == pytest.approx(1.0, rel=1e-6)

    def test_blocking_recv_serialises(self):
        """The blocking order (recv, then compute) costs the sum —
        what the paper says happens with a blocking all-gather."""

        def blocking(comm):
            if comm.rank == 0:
                comm.send(b"halo", 1)
            else:
                comm.recv(0)
                comm.advance(1.0)
            return comm.clock

        res = SimEngine(2, SLOW).run(blocking)
        assert res.values[1] == pytest.approx(2.0, rel=1e-6)

    def test_late_arrival_still_waits(self):
        m = MachineParams(alpha=3.0, beta_per_byte=0.0)

        def prog(comm):
            if comm.rank == 0:
                comm.send(b"x", 1)
            else:
                req = comm.irecv(0)
                comm.advance(1.0)  # not enough to hide a 3s flight
                req.wait()
            return comm.clock

        res = SimEngine(2, m).run(prog)
        assert res.values[1] == pytest.approx(3.0, rel=1e-6)
