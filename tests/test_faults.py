"""Tests for the fault-injection subsystem: plans, injector, comm faults,
supervised crashes, ULFM-style shrink, and replay determinism."""

import numpy as np
import pytest

from repro.errors import (
    CommunicatorError,
    ConfigurationError,
    DeadlockError,
    PeerFailedError,
    RankFailedError,
    SimulatedCrashError,
    TransientCommError,
)
from repro.machine.params import MachineParams, cori_knl
from repro.simmpi import SimEngine
from repro.simmpi.faults import (
    Cascade,
    Crash,
    FaultInjector,
    FaultPlan,
    LinkFault,
    MessageDrop,
    SendOutcome,
    Straggler,
    TransientFault,
)


class TestFaultPlan:
    def test_empty_plan(self):
        assert FaultPlan().empty
        assert not FaultPlan(crashes=(Crash(0, at_step=1),)).empty

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Crash(0)  # needs at_step or at_time
        with pytest.raises(ConfigurationError):
            TransientFault(0)  # needs send_index or probability
        with pytest.raises(ConfigurationError):
            LinkFault(0, 1, t_start=2.0, t_end=1.0)
        with pytest.raises(ConfigurationError):
            Straggler(0, factor=0.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(max_retries=-1)

    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=42,
            crashes=(Crash(1, at_step=3), Crash(2, at_time=1e-3)),
            cascades=(Cascade(3, at_recovery=2),),
            transients=(TransientFault(0, dest=1, send_index=5, attempts=2),),
            drops=(MessageDrop(3, send_index=7),),
            links=(LinkFault(0, 1, latency_factor=2.0, t_start=0.0, t_end=1.0),),
            stragglers=(Straggler(2, factor=1.5, jitter=0.1),),
            max_retries=5,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_json_round_trip_with_infinite_window(self):
        plan = FaultPlan(links=(LinkFault(0, 1, latency_factor=3.0),))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_random_plans_seeded(self):
        a = FaultPlan.random(7, 4)
        assert a == FaultPlan.random(7, 4)
        # At least one rank must be able to survive any random plan.
        for seed in range(20):
            plan = FaultPlan.random(seed, 4)
            assert len({c.rank for c in plan.crashes}) < 4


class TestFaultInjector:
    def test_crash_fires_once_per_spec(self):
        inj = FaultInjector(FaultPlan(crashes=(Crash(0, at_step=2),)))
        assert inj.crash_due(0, step=1) is None
        assert inj.crash_due(0, step=2) is not None
        assert inj.crash_due(0, step=2) is None  # already fired
        with pytest.raises(SimulatedCrashError):
            FaultInjector(FaultPlan(crashes=(Crash(1, at_time=0.5),))).check_crash(
                1, time=0.6
            )

    def test_reset_replays_identically(self):
        plan = FaultPlan(
            seed=5, transients=(TransientFault(0, probability=0.5, attempts=1),)
        )
        inj = FaultInjector(plan)
        first = [inj.send_outcome(0, 1).transient_attempts for _ in range(32)]
        inj.reset()
        second = [inj.send_outcome(0, 1).transient_attempts for _ in range(32)]
        assert first == second
        assert any(first) and not all(first)

    def test_send_outcome_indexing(self):
        inj = FaultInjector(
            FaultPlan(
                transients=(TransientFault(0, send_index=1, attempts=2),),
                drops=(MessageDrop(0, send_index=3),),
            )
        )
        outcomes = [inj.send_outcome(0, 1) for _ in range(5)]
        assert outcomes[0] is SendOutcome.OK
        assert outcomes[1].transient_attempts == 2
        assert outcomes[3].drop
        assert outcomes[4] is SendOutcome.OK
        # Other ranks keep independent counters.
        assert inj.send_outcome(1, 0) is SendOutcome.OK

    def test_link_machine_windows_and_memoisation(self):
        base = cori_knl()
        inj = FaultInjector(
            FaultPlan(
                links=(
                    LinkFault(0, 1, latency_factor=4.0, t_start=1.0, t_end=2.0),
                )
            )
        )
        assert inj.link_machine(0, 1, 0.5, base) is None  # before the window
        assert inj.link_machine(1, 0, 1.5, base) is None  # other direction
        degraded = inj.link_machine(0, 1, 1.5, base)
        assert degraded is not None
        assert degraded.alpha == pytest.approx(4 * base.alpha)
        # Memoised: same object for the same factors.
        assert inj.link_machine(0, 1, 1.7, base) is degraded

    def test_cascade_fires_once_at_counted_recovery(self):
        inj = FaultInjector(FaultPlan(cascades=(Cascade(2, at_recovery=2),)))
        inj.check_cascade(2)  # first shrink: survives
        inj.check_cascade(0)  # other ranks never fire
        with pytest.raises(SimulatedCrashError):
            inj.check_cascade(2)  # second shrink: dies
        inj.check_cascade(2)  # already fired: no re-raise on replayed shrinks

    def test_cascade_validation(self):
        with pytest.raises(ConfigurationError):
            Cascade(-1)
        with pytest.raises(ConfigurationError):
            Cascade(0, at_recovery=0)

    def test_straggler_slack_accumulates_and_resets(self):
        inj = FaultInjector(FaultPlan(stragglers=(Straggler(1, factor=2.0),)))
        assert inj.straggler_slack() == {}
        inj.note_straggler_slack(1, 0.25)
        inj.note_straggler_slack(1, 0.5)
        assert inj.straggler_slack() == {1: 0.75}
        inj.reset()
        assert inj.straggler_slack() == {}

    def test_straggler_factor(self):
        inj = FaultInjector(FaultPlan(stragglers=(Straggler(2, factor=1.5),)))
        assert inj.has_straggler(2) and not inj.has_straggler(0)
        assert inj.compute_factor(2) == 1.5
        jitter = FaultInjector(
            FaultPlan(seed=9, stragglers=(Straggler(0, factor=2.0, jitter=0.5),))
        )
        draws = [jitter.compute_factor(0) for _ in range(8)]
        assert all(2.0 <= f < 2.5 for f in draws)
        jitter.reset()
        assert [jitter.compute_factor(0) for _ in range(8)] == draws


def _pingpong(comm):
    other = 1 - comm.rank
    if comm.rank == 0:
        comm.send(np.ones(8), other)
        return comm.recv(other)
    payload = comm.recv(other)
    comm.send(payload, other)
    return comm.clock


class TestInjectedCommFaults:
    def test_transient_retries_then_succeeds(self):
        plan = FaultPlan(transients=(TransientFault(0, send_index=0, attempts=2),))
        eng = SimEngine(2, faults=plan, trace=True)
        res = eng.run(_pingpong)
        assert isinstance(res[0], np.ndarray)
        assert len(eng.tracer.faults("transient")) == 2
        assert len(eng.tracer.faults("backoff")) == 2
        assert len(eng.tracer.faults("retry")) == 1
        # The backoff cost lands in virtual time.
        clean = SimEngine(2).run(_pingpong)
        expected_backoff = plan.backoff_base * (1 + 2)
        assert res.clocks[0] == pytest.approx(clean.clocks[0] + expected_backoff)

    def test_transient_budget_exhausted(self):
        plan = FaultPlan(
            transients=(TransientFault(0, send_index=0, attempts=9),), max_retries=3
        )
        with pytest.raises(RankFailedError) as err:
            SimEngine(2, faults=plan).run(_pingpong)
        exc = err.value.failures[0]
        assert isinstance(exc, TransientCommError)
        assert exc.attempts == 4

    def test_message_drop_trips_watchdog(self):
        plan = FaultPlan(drops=(MessageDrop(0, send_index=0),))
        eng = SimEngine(2, faults=plan, timeout=0.4, trace=True)
        with pytest.raises(RankFailedError) as err:
            eng.run(_pingpong)
        assert isinstance(err.value.failures[1], DeadlockError)
        assert len(eng.tracer.faults("drop")) == 1

    def test_link_fault_slows_messages(self):
        plan = FaultPlan(links=(LinkFault(0, 1, latency_factor=10.0),))
        eng = SimEngine(2, faults=plan, trace=True)
        res = eng.run(_pingpong)
        clean = SimEngine(2).run(_pingpong)
        assert res.clocks[1] > clean.clocks[1]
        assert len(eng.tracer.faults("link")) == 1  # only the 0 -> 1 leg

    def test_straggler_dilates_compute(self):
        def prog(comm):
            comm.advance(1.0)
            return comm.clock

        plan = FaultPlan(stragglers=(Straggler(1, factor=2.5),))
        res = SimEngine(2, faults=plan).run(prog)
        assert res[0] == pytest.approx(1.0)
        assert res[1] == pytest.approx(2.5)

    def test_empty_plan_bit_identical_to_no_injector(self):
        def prog(comm):
            comm.advance(1e-6)
            x = np.full(3, float(comm.rank))
            total = comm.allreduce(x)
            comm.barrier()
            return float(total.sum()), comm.clock

        plain = SimEngine(4, trace=True)
        res_plain = plain.run(prog)
        injected = SimEngine(4, trace=True, faults=FaultPlan(), supervise=True)
        res_inj = injected.run(prog)
        assert res_plain.values == res_inj.values
        assert res_plain.clocks == res_inj.clocks
        assert plain.tracer.canonical() == injected.tracer.canonical()


def _resilient_allreduce(world, steps=6):
    """A rank program that shrinks and re-agrees on the step after crashes."""
    step = 0
    while step < steps:
        try:
            world.heartbeat(step=step)
            world.allreduce(np.full(4, float(world.rank)))
            world.advance(1e-6)
            step += 1
        except PeerFailedError:
            world = world.shrink()
            step = min(world.allgather_object(step))
    return world.size, step


class TestSupervisedCrashes:
    def test_unsupervised_crash_aborts_run(self):
        plan = FaultPlan(crashes=(Crash(1, at_step=1),))
        with pytest.raises(RankFailedError) as err:
            SimEngine(2, faults=plan).run(_resilient_allreduce)
        assert isinstance(err.value.failures[1], SimulatedCrashError)

    def test_supervised_crash_survivors_shrink_and_finish(self):
        plan = FaultPlan(crashes=(Crash(1, at_step=2),))
        eng = SimEngine(4, faults=plan, supervise=True, trace=True, timeout=10.0)
        res = eng.run(_resilient_allreduce)
        assert res.failed == (1,)
        assert res.survivors == (0, 2, 3)
        assert res.values[1] is None
        assert all(res.values[r] == (3, 6) for r in res.survivors)
        assert len(eng.tracer.faults("crash")) == 1
        assert len(eng.tracer.faults("recovery")) == 3
        assert res.time > 0

    def test_two_crashes_sequential_recoveries(self):
        plan = FaultPlan(crashes=(Crash(1, at_step=2), Crash(2, at_step=4)))
        eng = SimEngine(4, faults=plan, supervise=True, timeout=10.0)
        res = eng.run(_resilient_allreduce)
        assert res.failed == (1, 2)
        assert all(res.values[r] == (2, 6) for r in (0, 3))

    def test_all_ranks_dead_raises(self):
        plan = FaultPlan(crashes=(Crash(0, at_step=0), Crash(1, at_step=0)))
        with pytest.raises(RankFailedError):
            SimEngine(2, faults=plan, supervise=True, timeout=5.0).run(
                _resilient_allreduce
            )

    def test_shrink_requires_supervision(self):
        def prog(comm):
            comm.shrink()

        with pytest.raises(RankFailedError) as err:
            SimEngine(2).run(prog)
        assert isinstance(err.value.failures[0], CommunicatorError)

    def test_replay_is_deterministic(self):
        plan = FaultPlan(seed=3, crashes=(Crash(1, at_step=2), Crash(2, at_step=4)))
        eng = SimEngine(4, faults=plan, supervise=True, trace=True, timeout=10.0)
        first = eng.run(_resilient_allreduce)
        trace1 = eng.tracer.canonical()
        eng.tracer.clear()
        second = eng.run(_resilient_allreduce)
        assert second.failed == first.failed
        assert second.values == first.values
        assert second.clocks == first.clocks
        assert eng.tracer.canonical() == trace1


class TestRandomizedPlansNeverHang:
    """Any seeded random plan must end, one way or another, well within
    the watchdog budget — success, RankFailedError, DeadlockError, or a
    completed recovery, but never a hang."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_plan_terminates(self, seed):
        plan = FaultPlan.random(seed, 4)
        eng = SimEngine(4, faults=plan, supervise=True, timeout=3.0)
        try:
            res = eng.run(_resilient_allreduce)
            assert all(res.values[r] is not None for r in res.survivors)
        except RankFailedError as err:
            assert err.failures  # aggregated, typed failures
        except DeadlockError:
            pass  # a dropped message starved a receive: watchdog did its job


class TestMachineDerating:
    def test_derated_composes_with_link_faults(self):
        base = MachineParams(alpha=1e-6, beta_per_byte=1e-9)
        inj = FaultInjector(
            FaultPlan(
                links=(
                    LinkFault(0, 1, latency_factor=2.0),
                    LinkFault(0, 1, bandwidth_factor=0.5),
                )
            )
        )
        machine = inj.link_machine(0, 1, 0.0, base)
        assert machine.alpha == pytest.approx(2e-6)
        assert machine.beta_per_byte == pytest.approx(2e-9)
