"""Tests for losses (column-convention) and the SGD optimizer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.loss import mse_loss_grad, softmax_cross_entropy
from repro.dist.sgd import SGD
from repro.errors import ConfigurationError, ShapeError

RNG = np.random.default_rng(3)


class TestSoftmaxCE:
    def test_uniform_logits_loss_is_log_classes(self):
        logits = np.zeros((5, 4))
        labels = np.array([0, 1, 2, 3])
        loss, _ = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(np.log(5))

    def test_gradient_numerically(self):
        logits = RNG.standard_normal((4, 3))
        labels = np.array([1, 0, 3])
        _, dz = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for idx in [(0, 0), (1, 1), (3, 2)]:
            lp, lm = logits.copy(), logits.copy()
            lp[idx] += eps
            lm[idx] -= eps
            fp, _ = softmax_cross_entropy(lp, labels)
            fm, _ = softmax_cross_entropy(lm, labels)
            assert dz[idx] == pytest.approx((fp - fm) / (2 * eps), rel=1e-4, abs=1e-8)

    def test_gradient_columns_sum_to_zero(self):
        logits = RNG.standard_normal((6, 5))
        labels = RNG.integers(0, 6, 5)
        _, dz = softmax_cross_entropy(logits, labels)
        np.testing.assert_allclose(dz.sum(axis=0), 0.0, atol=1e-12)

    def test_numerical_stability_with_large_logits(self):
        logits = np.array([[1000.0], [0.0]])
        loss, dz = softmax_cross_entropy(logits, np.array([0]))
        assert loss == pytest.approx(0.0, abs=1e-6)
        assert np.isfinite(dz).all()

    def test_sharding_sums_to_serial(self):
        """Shard losses/grads with global_batch=B add up exactly — the
        property the distributed trainer's row-comm all-reduce relies on."""
        logits = RNG.standard_normal((4, 8))
        labels = RNG.integers(0, 4, 8)
        full_loss, full_dz = softmax_cross_entropy(logits, labels)
        l1, d1 = softmax_cross_entropy(logits[:, :3], labels[:3], global_batch=8)
        l2, d2 = softmax_cross_entropy(logits[:, 3:], labels[3:], global_batch=8)
        assert l1 + l2 == pytest.approx(full_loss, rel=1e-12)
        np.testing.assert_allclose(np.hstack([d1, d2]), full_dz, rtol=1e-12)

    def test_validation(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros(4), np.array([0]))
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((4, 2)), np.array([0]))
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((4, 1)), np.array([9]))
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((4, 1)), np.array([0]), global_batch=0)


class TestMSE:
    def test_value_and_grad(self):
        p = np.array([[1.0, 2.0]])
        t = np.array([[0.0, 0.0]])
        loss, dp = mse_loss_grad(p, t)
        assert loss == pytest.approx((1 + 4) / (2 * 2))
        np.testing.assert_allclose(dp, [[0.5, 1.0]])

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            mse_loss_grad(np.zeros((2, 2)), np.zeros((2, 3)))

    @given(b=st.integers(2, 10))
    @settings(deadline=None)
    def test_sharding_sums_to_serial(self, b):
        p = RNG.standard_normal((3, b))
        t = RNG.standard_normal((3, b))
        full, _ = mse_loss_grad(p, t)
        half = b // 2
        l1, _ = mse_loss_grad(p[:, :half], t[:, :half], global_batch=b)
        l2, _ = mse_loss_grad(p[:, half:], t[:, half:], global_batch=b)
        assert l1 + l2 == pytest.approx(full, rel=1e-12)


class TestSGD:
    def test_plain_update(self):
        w = np.ones(3)
        SGD(lr=0.5).step([w], [np.array([1.0, 2.0, 3.0])])
        np.testing.assert_allclose(w, [0.5, 0.0, -0.5])

    def test_momentum_accumulates(self):
        w = np.zeros(1)
        opt = SGD(lr=1.0, momentum=0.5)
        g = np.array([1.0])
        opt.step([w], [g])  # v=1, w=-1
        opt.step([w], [g])  # v=1.5, w=-2.5
        assert w[0] == pytest.approx(-2.5)

    def test_weight_decay(self):
        w = np.array([2.0])
        SGD(lr=0.1, weight_decay=0.5).step([w], [np.array([0.0])])
        assert w[0] == pytest.approx(2.0 - 0.1 * 0.5 * 2.0)

    def test_reset_clears_momentum(self):
        w = np.zeros(1)
        opt = SGD(lr=1.0, momentum=0.9)
        opt.step([w], [np.array([1.0])])
        opt.reset()
        w2 = np.zeros(1)
        opt.step([w2], [np.array([1.0])])
        assert w2[0] == pytest.approx(-1.0)

    def test_matches_paper_eq1(self):
        """w_{n+1} = w_n - eta * mean-gradient (Eq. 1)."""
        w = RNG.standard_normal(5)
        g = RNG.standard_normal(5)
        expected = w - 0.05 * g
        SGD(lr=0.05).step([w], [g])
        np.testing.assert_allclose(w, expected, rtol=1e-15)

    @pytest.mark.parametrize(
        "kwargs", [dict(lr=0), dict(lr=0.1, momentum=1.0), dict(lr=0.1, weight_decay=-1)]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SGD(**kwargs)

    def test_mismatched_lists(self):
        with pytest.raises(ConfigurationError):
            SGD().step([np.zeros(2)], [])

    def test_mismatched_shapes(self):
        with pytest.raises(ShapeError):
            SGD().step([np.zeros(2)], [np.zeros(3)])
