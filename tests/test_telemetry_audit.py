"""Satellite test: measured 1.5D traffic equals the Eq. 8 terms exactly.

The audit compares the *simulated* per-step communication (data bytes
summed over all ranks, and send counts) of ``mlp_train_program`` against
the closed-form bandwidth/latency terms of
:func:`repro.core.costs.integrated_mb_cost` — zero relative error, not
approximately.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.audit import (
    PHASE_CATEGORY,
    audit_events,
    audit_mlp_15d,
)

DIMS = (32, 24, 16, 10)
BATCH = 16

# Grid shapes covering general, pure-model, pure-batch and a
# non-power-of-two, non-divisible split (24/3, 16/3 are uneven).
GRIDS = [(4, 2), (2, 4), (4, 1), (1, 4), (3, 2)]


@pytest.mark.parametrize("pr,pc", GRIDS)
class TestExactness:
    def test_bandwidth_terms_exact(self, pr, pc):
        report, _ = audit_mlp_15d(DIMS, pr=pr, pc=pc, batch=BATCH, steps=2)
        assert report.max_bandwidth_rel_error == 0.0
        assert report.exact
        for term in report.terms:
            assert term.measured_bytes == term.predicted_bytes

    def test_latency_message_counts_exact(self, pr, pc):
        report, _ = audit_mlp_15d(DIMS, pr=pr, pc=pc, batch=BATCH, steps=2)
        assert report.max_latency_rel_error == 0.0
        for term in report.terms:
            assert term.measured_messages == term.predicted_messages


class TestStructure:
    def test_terms_cover_every_eq8_sum(self):
        report, _ = audit_mlp_15d(DIMS, pr=2, pc=2, batch=BATCH, steps=1)
        cats = {t.category for t in report.terms}
        assert cats == set(PHASE_CATEGORY.values())
        layers = {t.layer_index for t in report.terms if t.category.endswith("dw")}
        assert layers == {1, 2, 3}
        # No dx all-reduce for the first layer (no input gradient needed).
        dx_layers = {
            t.layer_index for t in report.terms if t.category.endswith("dx")
        }
        assert 1 not in dx_layers

    def test_degenerate_grid_dims_send_nothing(self):
        # pr=1: no model-parallel traffic; every fwd/bwd_dx term is 0 = 0.
        report, _ = audit_mlp_15d(DIMS, pr=1, pc=4, batch=BATCH, steps=1)
        for t in report.terms:
            if t.category.startswith("model."):
                assert t.predicted_bytes == t.measured_bytes == 0

    def test_message_counts_match_round_formulas(self):
        pr, pc = 4, 2
        report, _ = audit_mlp_15d(DIMS, pr=pr, pc=pc, batch=BATCH, steps=1)
        p = pr * pc
        for t in report.terms:
            if t.category == "model.allgather_fwd":
                assert t.measured_messages == p * math.ceil(math.log2(pr))
            elif t.category == "model.allreduce_dx":
                assert t.measured_messages == p * 2 * (pr - 1)
            elif t.category == "batch.allreduce_dw":
                assert t.measured_messages == p * 2 * (pc - 1)

    def test_audit_report_table_renders(self):
        report, _ = audit_mlp_15d(DIMS, pr=2, pc=2, batch=BATCH, steps=1)
        text = report.to_table().to_ascii()
        assert "model.allgather_fwd" in text
        assert "bytes_rel_err" in text

    def test_events_returned_for_export(self):
        _, events = audit_mlp_15d(DIMS, pr=2, pc=2, batch=BATCH, steps=1)
        assert any(e.op == "span" for e in events)
        assert any(e.op == "send" and e.data_bytes > 0 for e in events)


class TestAuditEvents:
    def test_wrong_dims_detected(self):
        # Audit a real trace against the wrong network: errors must show.
        _, events = audit_mlp_15d(DIMS, pr=2, pc=2, batch=BATCH, steps=1)
        wrong = (32, 48, 32, 10)
        report = audit_events(events, wrong, pr=2, pc=2, batch=BATCH, steps=1)
        assert report.max_bandwidth_rel_error > 0.0
        assert not report.exact

    def test_rejects_bad_steps(self):
        with pytest.raises(ConfigurationError):
            audit_events((), DIMS, pr=2, pc=2, batch=BATCH, steps=0)


class TestCheckpointAudit:
    """Checkpoint traffic closes against the closed forms at zero error."""

    def _events(self, mode, momentum):
        import numpy as np

        from repro.dist.elastic import elastic_mlp_train
        from repro.dist.train import MLPParams
        from repro.simmpi.faults import Crash, FaultPlan

        dims = (8, 10, 6)
        rng = np.random.default_rng(3)
        x = rng.standard_normal((dims[0], 32))
        y = rng.integers(0, dims[-1], 32)
        plan = FaultPlan(seed=3, crashes=(Crash(rank=1, at_step=3),))
        res = elastic_mlp_train(
            MLPParams.init(dims, seed=3), x, y, pr=2, pc=4, batch=8,
            steps=6, checkpoint_every=2, ckpt_mode=mode,
            momentum=momentum, faults=plan, trace=True,
        )
        return res.engine.tracer.canonical(), dims

    @pytest.mark.parametrize("mode", ["erasure", "replicate"])
    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    def test_crashy_run_closes_exactly(self, mode, momentum):
        from repro.telemetry.audit import audit_checkpoint_events

        events, dims = self._events(mode, momentum)
        report = audit_checkpoint_events(events, dims, pr=2, pc=4, batch=8)
        assert report.terms, "checkpoint activity must produce audit terms"
        for t in report.terms:
            assert t.predicted_bytes == t.measured_bytes, t.category
            assert t.predicted_messages == t.measured_messages, t.category
        assert report.exact
        categories = {t.category for t in report.terms}
        assert "ckpt.census" in categories
        if mode == "erasure":
            # Takes are local: the parity terms predict zero wire bytes;
            # shard fetches are the only checkpoint traffic.
            assert "ckpt.fetch" in categories
            parity = [t for t in report.terms if t.category == "ckpt.parity"]
            assert parity and all(t.measured_bytes == 0 for t in parity)
        else:
            assert any(
                t.category == "ckpt.replicate" and t.measured_bytes > 0
                for t in report.terms
            )

    def test_wrong_dims_break_closure(self):
        from repro.telemetry.audit import audit_checkpoint_events

        events, _ = self._events("replicate", 0.0)
        report = audit_checkpoint_events(events, (8, 14, 6), pr=2, pc=4, batch=8)
        assert not report.exact
