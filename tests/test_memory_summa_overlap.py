"""Tests for the Section-4 models: memory footprint, SUMMA comparison,
and the Fig.-8 overlap model."""

import pytest
from hypothesis import given, strategies as st

from repro.core.memory import memory_footprint
from repro.core.overlap import overlapped_time
from repro.core.strategy import ProcessGrid, Strategy
from repro.core.summa import (
    compare_1p5d_vs_summa,
    summa_stationary_a_volume,
    summa_stationary_c_volume,
    volume_1p5d,
)
from repro.errors import ConfigurationError
from repro.nn import alexnet

NET = alexnet()


class TestMemory:
    def test_pure_batch_replicates_model(self):
        """Sec. 4: pure data parallelism replicates the whole model."""
        grid = ProcessGrid(1, 64)
        fp = memory_footprint(NET, 2048, Strategy.same_grid_model(NET, grid))
        assert fp.weights == pytest.approx(NET.total_params)

    def test_pr_divides_model_replication(self):
        """1.5D cuts model memory by Pr ..."""
        a = memory_footprint(NET, 2048, Strategy.same_grid_model(NET, ProcessGrid(1, 64)))
        b = memory_footprint(NET, 2048, Strategy.same_grid_model(NET, ProcessGrid(8, 8)))
        assert b.weights == pytest.approx(a.weights / 8)

    def test_pc_divides_activations(self):
        """... at the cost of Pc-fold data replication."""
        full = memory_footprint(NET, 2048, Strategy.same_grid_model(NET, ProcessGrid(8, 1)))
        split = memory_footprint(NET, 2048, Strategy.same_grid_model(NET, ProcessGrid(8, 8)))
        assert split.activations == pytest.approx(full.activations / 8)

    def test_gradients_mirror_weights(self):
        fp = memory_footprint(NET, 256, Strategy.same_grid_model(NET, ProcessGrid(4, 4)))
        assert fp.weight_gradients == pytest.approx(fp.weights)

    def test_domain_layers_divide_activations_by_pr(self):
        grid = ProcessGrid(4, 8)
        dom = memory_footprint(NET, 256, Strategy.conv_domain_fc_model(NET, grid))
        mod = memory_footprint(NET, 256, Strategy.same_grid_model(NET, grid))
        # Domain keeps full conv weights (more weight memory) but splits
        # conv activations spatially (less activation memory).
        assert dom.weights > mod.weights
        assert dom.activations < mod.activations

    def test_bytes_scale(self):
        fp = memory_footprint(NET, 256, Strategy.same_grid_model(NET, ProcessGrid(1, 8)))
        assert fp.bytes(4) == pytest.approx(4 * fp.total)

    @given(pr=st.integers(1, 16), pc=st.integers(1, 16))
    def test_total_memory_decreases_or_holds_with_more_processes(self, pr, pc):
        base = memory_footprint(NET, 256, Strategy.same_grid_model(NET, ProcessGrid(1, 1)))
        if pc > 256:
            return
        fp = memory_footprint(NET, 256, Strategy.same_grid_model(NET, ProcessGrid(pr, pc)))
        assert fp.total <= base.total + 1e-9


class TestSumma:
    def test_1p5d_volume_is_activation_panel_only(self):
        assert volume_1p5d(1000, 512, 8, 4) == pytest.approx((512 / 4) * 1000 * 7 / 8)

    def test_stationary_a_matches_section4(self):
        assert summa_stationary_a_volume(1000, 512, 8, 4) == pytest.approx(
            2 * 512 * 1000 / 8 + 512 * 1000 / 4
        )

    def test_stationary_c_streams_both_inputs(self):
        assert summa_stationary_c_volume(100, 200, 64, 4, 8) == pytest.approx(
            100 * 200 / 4 + 64 * 200 / 8
        )

    def test_summa_approaches_but_never_beats_1p5d(self):
        """Sec. 4: costs approach 1.5D when pr >> pc but never surpass it."""
        ratios = []
        for pr, pc in [(2, 256), (16, 32), (256, 2)]:
            cmp = compare_1p5d_vs_summa(4096, 64, pr, pc)
            assert not cmp.summa_ever_wins
            ratios.append(cmp.ratio_a)
        assert ratios[0] > ratios[-1]  # approaching as pr grows

    @given(
        d=st.floats(1, 1e7),
        batch=st.floats(1, 1e6),
        pr=st.integers(2, 512),
        pc=st.integers(2, 512),
    )
    def test_no_regime_where_2d_wins(self, d, batch, pr, pc):
        cmp = compare_1p5d_vs_summa(d, batch, pr, pc)
        assert cmp.v_summa_a >= cmp.v_1p5d
        assert cmp.v_summa_c >= cmp.v_1p5d

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            volume_1p5d(0, 10, 2, 2)
        with pytest.raises(ConfigurationError):
            summa_stationary_a_volume(10, 10, 0, 2)


class TestOverlap:
    def test_fully_hidden_when_compute_dominates(self):
        # 2/3 of comm (=2) fits under 2/3 of compute (=20).
        assert overlapped_time(3.0, 30.0) == pytest.approx(30.0 + 1.0)

    def test_partially_hidden_when_comm_dominates(self):
        # overlappable = 20, capacity = 2 -> exposed = 30 - 2 = 28.
        assert overlapped_time(30.0, 3.0) == pytest.approx(3.0 + 28.0)

    def test_bounds(self):
        for comm, comp in [(1.0, 1.0), (5.0, 0.5), (0.0, 4.0), (7.0, 0.0)]:
            t = overlapped_time(comm, comp)
            assert comp <= t <= comm + comp + 1e-12

    def test_zero_fraction_is_no_overlap(self):
        assert overlapped_time(5.0, 2.0, overlappable_fraction=0.0) == pytest.approx(7.0)

    def test_full_overlap_floor(self):
        assert overlapped_time(5.0, 100.0, overlappable_fraction=1.0, compute_fraction=1.0) == pytest.approx(100.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(overlappable_fraction=1.5),
            dict(overlappable_fraction=-0.1),
            dict(compute_fraction=2.0),
        ],
    )
    def test_fraction_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            overlapped_time(1.0, 1.0, **kwargs)

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigurationError):
            overlapped_time(-1.0, 1.0)

    @given(comm=st.floats(0, 1e3), comp=st.floats(0, 1e3))
    def test_overlap_never_increases_time(self, comm, comp):
        assert overlapped_time(comm, comp) <= comm + comp + 1e-9
