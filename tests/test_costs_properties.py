"""Property-based tests on the cost equations (hypothesis)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costs import (
    batch_parallel_cost,
    integrated_cost,
    integrated_mb_cost,
    model_parallel_cost,
)
from repro.core.ratio import batch_model_volume_ratio
from repro.core.strategy import ProcessGrid, Strategy
from repro.machine.params import cori_knl
from repro.nn import alexnet, lenet_like

NET = lenet_like()  # small net keeps hypothesis fast
ALEX = alexnet()
M = cori_knl()

grids = st.tuples(st.integers(1, 16), st.integers(1, 16)).map(lambda t: ProcessGrid(*t))


@given(grid=grids, batch=st.integers(16, 4096))
def test_eq8_total_nonnegative_and_finite(grid, batch):
    if grid.pc > batch:
        return
    bd = integrated_mb_cost(NET, batch, grid, M)
    assert bd.total >= 0.0
    assert math.isfinite(bd.total)


@given(p=st.integers(1, 256), batch=st.integers(256, 4096))
def test_eq8_degenerates_to_eq4_and_eq3(p, batch):
    """The two degeneracy identities hold for every (P, B)."""
    via_eq8_batch = integrated_mb_cost(NET, batch, ProcessGrid(1, p), M).total
    direct_batch = batch_parallel_cost(NET, p, M, batch=batch).total
    assert via_eq8_batch == pytest.approx(direct_batch, rel=1e-12, abs=1e-18)

    via_eq8_model = integrated_mb_cost(NET, batch, ProcessGrid(p, 1), M).total
    direct_model = model_parallel_cost(NET, batch, p, M).total
    assert via_eq8_model == pytest.approx(direct_model, rel=1e-12, abs=1e-18)


@given(grid=grids, batch=st.integers(64, 2048))
def test_bandwidth_monotone_in_batch(grid, batch):
    """Eq. 8's activation terms scale linearly with B; dW terms don't."""
    if grid.pc > batch:
        return
    a = integrated_mb_cost(NET, batch, grid, M)
    b = integrated_mb_cost(NET, 2 * batch, grid, M)
    assert b.bandwidth >= a.bandwidth - 1e-18


@given(batch=st.integers(16, 2048), pr=st.integers(1, 8), pc=st.integers(1, 8))
def test_dw_volume_shrinks_with_pr(batch, pr, pc):
    """Eq. 8's headline: all-reduce volume divided by Pr."""
    if pc > batch:
        return
    one = integrated_mb_cost(NET, batch, ProcessGrid(1, pc), M).filter("batch.").bandwidth
    many = integrated_mb_cost(NET, batch, ProcessGrid(pr, pc), M).filter("batch.").bandwidth
    assert many <= one / pr + 1e-18


@given(batch=st.integers(8, 4096))
def test_eq5_ratio_matches_cost_volumes(batch):
    """Eq. 5 is derivable from the Eq. 3 / Eq. 4 volume accounting.

    For one layer, batch volume = 2|W|(P-1)/P and model volume =
    3 B d_i (P-1)/P (one all-gather + a double all-reduce), so the
    tracked volumes must reproduce Eq. 5's 2|W|/(3 B d) ratio.
    """
    p = 8
    # Single-layer network isolates the layer (no i>=2 terms elsewhere).
    from repro.nn import mlp

    net = mlp([64, 32])
    layer = net.weighted_layers[0]
    batch_vol = batch_parallel_cost(net, p, M, batch=batch).volume
    model_vol = model_parallel_cost(net, batch, p, M).volume
    # First layer has no dX all-reduce, so model volume here is only the
    # all-gather: scale Eq. 5's 3 B d down to 1 B d.
    expected_ratio = 3 * batch_model_volume_ratio(layer, batch)
    assert batch_vol / model_vol == pytest.approx(expected_ratio, rel=1e-9)


@given(
    batch=st.integers(32, 2048),
    pr=st.integers(1, 8),
    pc=st.integers(1, 32),
)
@settings(max_examples=50)
def test_mixed_strategy_total_is_sum_of_per_layer_choices(batch, pr, pc):
    """integrated_cost is separable per layer: evaluating a mixed
    strategy equals summing each layer's cost under its own placement."""
    if pr * pc > batch or pr * pc == 1:
        return  # BATCH-placed layers need P <= B
    grid = ProcessGrid(pr, pc)
    mixed = Strategy.conv_batch_fc_model(ALEX, grid)
    total = integrated_cost(ALEX, batch, mixed, M).total
    by_layer = integrated_cost(ALEX, batch, mixed, M).by_layer()
    assert total == pytest.approx(sum(by_layer.values()), rel=1e-12)
    # Every conv layer's contribution matches the pure-batch formula.
    for w in ALEX.weighted_layers:
        if w.is_conv:
            p = grid.p
            lg = math.ceil(math.log2(p)) if p > 1 else 0
            expected = 2 * (M.alpha * lg + M.beta * (p - 1) / p * w.weights)
            assert by_layer[w.name] == pytest.approx(expected, rel=1e-12)


@given(pr=st.integers(2, 64))
def test_domain_halo_independent_of_domain_parts(pr):
    """Eq. 9's halo volume does not depend on Pr (only boundary rows move)."""
    grid_a = ProcessGrid(2, 4)
    grid_b = ProcessGrid(pr, 4)
    sa = Strategy.conv_domain_fc_model(ALEX, grid_a)
    sb = Strategy.conv_domain_fc_model(ALEX, grid_b)
    halo_a = integrated_cost(ALEX, 64, sa, M).filter("domain.").total
    halo_b = integrated_cost(ALEX, 64, sb, M).filter("domain.").total
    assert halo_a == pytest.approx(halo_b, rel=1e-12)
