"""Tests for the longitudinal run registry and its drift observatory."""

import json

import numpy as np
import pytest

from repro.dist.train import MLPParams, distributed_mlp_train, mlp_run_record
from repro.errors import ConfigurationError
from repro.observe.registry import (
    REGISTRY_SCHEMA,
    DriftThresholds,
    RegistryEntry,
    append_entries,
    compute_trends,
    entry_from_bench,
    entry_from_payload,
    entry_from_record,
    load_registry,
    trend_table,
    worst_status,
)
from repro.simmpi.engine import SimEngine


def make_entry(series="run:test:a=1,grid=2x2", **metrics):
    metrics = metrics or {"makespan_s": 1.0}
    return RegistryEntry(kind="run", series=series,
                         metrics={k: float(v) for k, v in metrics.items()})


def series_history(values, metric="makespan_s"):
    return [make_entry(**{metric: v}) for v in values]


def record_payload():
    dims = (8, 6, 4)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((dims[0], 8))
    y = rng.integers(0, dims[-1], 8)
    params0 = MLPParams.init(dims, seed=0)
    engine = SimEngine(4, None, trace=True)
    _, _, sim = distributed_mlp_train(
        params0, x, y, pr=2, pc=2, batch=4, steps=2, engine=engine
    )
    return mlp_run_record(
        engine, sim, dims=dims, pr=2, pc=2, batch=4, steps=2
    ).to_dict()


class TestEntry:
    def test_round_trip(self):
        entry = make_entry(makespan_s=2.0, dropped=0)
        assert RegistryEntry.from_dict(entry.to_dict()) == entry

    def test_schema_tagged(self):
        assert make_entry().to_dict()["schema"] == REGISTRY_SCHEMA

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(schema="nope"),
            lambda d: d.update(kind="mystery"),
            lambda d: d.update(series=""),
            lambda d: d.update(metrics={}),
            lambda d: d.update(metrics={"m": "high"}),
            lambda d: d.update(metrics={"m": True}),
        ],
    )
    def test_bad_payloads_rejected(self, mutate):
        payload = make_entry().to_dict()
        mutate(payload)
        with pytest.raises(ConfigurationError):
            RegistryEntry.from_dict(payload)


class TestIngestion:
    def test_record_entry_series_and_metrics(self):
        payload = record_payload()
        entry = entry_from_record(payload, source="test")
        assert entry.kind == "run"
        assert entry.series.startswith("run:train:")
        assert "grid=2x2" in entry.series
        assert entry.metrics["makespan_s"] == payload["makespan_s"]
        assert "dropped" in entry.metrics
        assert entry.source == "test"

    def test_health_counts_flattened(self):
        payload = record_payload()
        payload["health"] = {
            "counts": {"straggler": 2},
            "events": [
                {"kind": "straggler", "rank": 0, "t_s": 1e-6,
                 "severity": "warn", "detail": "slow", "step": 2},
            ] * 2,
        }
        entry = entry_from_record(payload)
        assert entry.metrics["health.straggler"] == 2.0

    def test_bench_entry(self):
        payload = {
            "schema": "repro.observe.bench/v1",
            "config": {"steps": 3},
            "overhead": 1.0,
            "bare_s": 2e-5,
            "identical": True,  # bools excluded from metrics
        }
        entry = entry_from_bench(payload, source="bench")
        assert entry.kind == "bench"
        assert entry.series == "bench:observe"
        assert entry.metrics == {"overhead": 1.0, "bare_s": 2e-5}

    def test_payload_auto_detect(self):
        assert entry_from_payload(record_payload()).kind == "run"
        bench = {"schema": "repro.search.bench/v1", "speedup": 2.0}
        assert entry_from_payload(bench).series == "bench:search"
        with pytest.raises(ConfigurationError, match="cannot ingest"):
            entry_from_payload({"schema": "mystery/v9"})


class TestStore:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "reg.jsonl")
        entries = [make_entry(makespan_s=v) for v in (1.0, 2.0, 3.0)]
        assert append_entries(path, entries) == 3
        assert load_registry(path) == entries
        # Append-only: a second write extends, never rewrites.
        append_entries(path, [make_entry(makespan_s=4.0)])
        assert len(load_registry(path)) == 4

    def test_missing_file_is_empty(self, tmp_path):
        assert load_registry(str(tmp_path / "nope.jsonl")) == []

    def test_bad_line_reports_position(self, tmp_path):
        path = tmp_path / "reg.jsonl"
        good = json.dumps(make_entry().to_dict())
        path.write_text(good + "\n{not json}\n")
        with pytest.raises(ConfigurationError, match="2"):
            load_registry(str(path))

    def test_creates_parent_dirs(self, tmp_path):
        path = str(tmp_path / "deep" / "reg.jsonl")
        append_entries(path, [make_entry()])
        assert len(load_registry(path)) == 1


class TestDrift:
    def test_thresholds_validate(self):
        DriftThresholds().validate()
        with pytest.raises(ConfigurationError):
            DriftThresholds(min_history=1).validate()
        with pytest.raises(ConfigurationError):
            DriftThresholds(warn_z=5.0, crit_z=3.0).validate()
        with pytest.raises(ConfigurationError):
            DriftThresholds(rel_warn=0.5, rel_crit=0.1).validate()

    def test_stable_series_is_ok(self):
        trends = compute_trends(series_history([1.0] * 5))
        assert [t.status for t in trends] == ["ok"]
        assert worst_status(trends) == "ok"

    def test_single_entry_is_new(self):
        trends = compute_trends(series_history([1.0]))
        assert [t.status for t in trends] == ["new"]
        assert worst_status(trends) == "ok"

    def test_short_history_never_gates(self):
        trends = compute_trends(series_history([1.0, 9.0]))
        assert [t.status for t in trends] == ["short"]
        assert not trends[0].gates

    def test_zero_mad_uses_relative_bands(self):
        # Bit-stable history: any visible change is judged relatively.
        trends = compute_trends(series_history([1.0, 1.0, 1.0, 1.0, 1.03]))
        assert trends[0].status == "warn"  # 3% > rel_warn 2%
        trends = compute_trends(series_history([1.0, 1.0, 1.0, 1.0, 1.2]))
        assert trends[0].status == "drift"  # 20% > rel_crit 10%
        assert worst_status(trends) == "drift"

    def test_mad_bands_absorb_jitter(self):
        noisy = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02]
        trends = compute_trends(series_history(noisy))
        assert trends[0].status == "ok"

    def test_robust_z_flags_outlier(self):
        values = [1.0, 1.01, 0.99, 1.02, 0.98, 3.0]
        trends = compute_trends(series_history(values))
        assert trends[0].status == "drift"

    def test_only_latest_entry_metrics_judged(self):
        entries = series_history([1.0] * 5)
        entries[0] = make_entry(makespan_s=1.0, vanished=9.0)
        trends = compute_trends(entries)
        assert [t.metric for t in trends] == ["makespan_s"]

    def test_series_are_independent(self):
        entries = series_history([1.0] * 5) + [
            make_entry(series="run:test:b=2,grid=2x2", makespan_s=v)
            for v in (1.0, 1.0, 1.0, 1.0, 9.0)
        ]
        trends = compute_trends(entries)
        by_series = {t.series: t.status for t in trends}
        assert by_series["run:test:a=1,grid=2x2"] == "ok"
        assert by_series["run:test:b=2,grid=2x2"] == "drift"

    def test_trend_table_renders(self):
        table = trend_table(compute_trends(series_history([1.0] * 5)))
        text = table.to_ascii()
        assert "makespan_s" in text and "ok" in text


class TestEndToEnd:
    def test_record_histories_gate_on_injected_drift(self, tmp_path):
        path = str(tmp_path / "reg.jsonl")
        payload = record_payload()
        append_entries(
            path, [entry_from_record(payload) for _ in range(5)]
        )
        assert worst_status(compute_trends(load_registry(path))) == "ok"
        drifted = json.loads(json.dumps(payload))
        drifted["makespan_s"] *= 1.5
        append_entries(path, [entry_from_record(drifted)])
        assert worst_status(compute_trends(load_registry(path))) == "drift"
