"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in ("table1", "fig4", "fig6", "fig10", "eq5"):
            assert key in out


class TestSummary:
    def test_summary_prints_setting(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out and "fc8" in out
        assert "Cori" in out and "ImageNet" in out


class TestRun:
    def test_run_prints_report(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "=== table1" in out

    def test_run_quiet_suppresses_stdout(self, capsys):
        assert main(["run", "table1", "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_run_with_export(self, tmp_path, capsys):
        assert main(["run", "eq5", "--quiet", "--out", str(tmp_path)]) == 0
        files = os.listdir(tmp_path)
        assert "eq5.csv" in files and "eq5.json" in files
        assert "eq5_report.txt" in files

    def test_unknown_experiment_raises(self):
        with pytest.raises(Exception):
            main(["run", "fig99"])


class TestBest:
    def test_best_prints_strategy(self, capsys):
        assert main(["best", "-B", "2048", "-P", "64"]) == 0
        out = capsys.readouterr().out
        assert "best    :" in out
        assert "per-layer placements:" in out
        assert "conv1" in out and "fc8" in out

    def test_best_beyond_batch_limit_uses_splits(self, capsys):
        assert main(["best", "-B", "64", "-P", "128"]) == 0
        out = capsys.readouterr().out
        # No pure-batch layers are feasible at P > B.
        placements = out.split("per-layer placements:")[1]
        assert "batch" not in placements

    def test_best_memory_cap_respected(self, capsys):
        assert main(["best", "-B", "2048", "-P", "512", "--max-memory-mb", "150"]) == 0
        out = capsys.readouterr().out
        mb = float(out.split("memory/process: ")[1].split(" MB")[0])
        assert mb <= 150

    def test_best_other_networks(self, capsys):
        assert main(["best", "-B", "256", "-P", "32", "--network", "mlp"]) == 0
        out = capsys.readouterr().out
        assert "MLP" in out

    def test_best_requires_batch_and_processes(self):
        with pytest.raises(SystemExit):
            main(["best", "-B", "256"])

    def test_best_plan_prints_schedule(self, capsys):
        assert main(["best", "-B", "2048", "-P", "64", "--plan"]) == 0
        out = capsys.readouterr().out
        assert "Iteration plan" in out
        assert "allreduce(dW)" in out
        assert "blocking (critical-path) communication" in out

    def test_best_serial_and_engine_agree(self, capsys):
        assert main(["best", "-B", "2048", "-P", "256"]) == 0
        engine_out = capsys.readouterr().out
        assert main(["best", "-B", "2048", "-P", "256", "--serial"]) == 0
        serial_out = capsys.readouterr().out
        assert engine_out == serial_out

    def test_best_cache_stats_line(self, capsys):
        assert main(["best", "-B", "2048", "-P", "64", "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "cache   :" in out and "hit rate" in out

    def test_best_serial_cache_stats_is_na(self, capsys):
        assert (
            main(["best", "-B", "2048", "-P", "64", "--serial", "--cache-stats"])
            == 0
        )
        out = capsys.readouterr().out
        assert "cache   : n/a (serial optimizer, no cache)" in out


class TestBench:
    """``repro bench``: measure, record, and gate the search engine."""

    FAST = ["bench", "--points", "4,8", "-B", "64", "--repeat", "1"]

    def test_bench_no_compare_happy_path(self, capsys):
        assert main(self.FAST + ["--no-compare"]) == 0
        out = capsys.readouterr().out
        assert "config  :" in out and "P=[4, 8]" in out
        assert "speedup :" in out and "bit-identical" in out
        assert "cache   :" in out

    def test_bench_with_jobs_flag(self, capsys):
        assert main(self.FAST + ["--jobs", "2", "--no-compare"]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_bench_out_writes_record(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_search.json"
        assert main(self.FAST + ["--no-compare", "--out", str(out_file)]) == 0
        from repro.search.bench import BenchRecord

        record = BenchRecord.from_json(out_file.read_text())
        assert record.processes == (4, 8) and record.identical

    def test_bench_update_baseline_then_gate_passes(self, tmp_path, capsys):
        # The small FAST config amortizes too little work to clear the 3x
        # floor, so the gate round-trip uses the default Fig. 7 config.
        full = ["bench", "--repeat", "1"]
        baseline = tmp_path / "baseline.json"
        assert (
            main(full + ["--baseline", str(baseline), "--update-baseline"])
            == 0
        )
        assert "baseline: updated" in capsys.readouterr().out
        # Same config, generous tolerance: must pass the gate.
        assert (
            main(full + ["--baseline", str(baseline), "--tolerance", "0.9"])
            == 0
        )
        assert "gate    : PASS" in capsys.readouterr().out

    def test_bench_regression_exits_1(self, tmp_path, capsys):
        # Fabricate a baseline claiming an absurd speedup; zero tolerance
        # means any real measurement is a regression.
        import json

        baseline = tmp_path / "baseline.json"
        assert (
            main(self.FAST + ["--baseline", str(baseline), "--update-baseline"])
            == 0
        )
        capsys.readouterr()
        payload = json.loads(baseline.read_text())
        payload["engine_s"] = payload["serial_s"] / 10000.0
        baseline.write_text(json.dumps(payload))
        assert main(self.FAST + ["--baseline", str(baseline)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_bench_config_mismatch_exits_2(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(self.FAST + ["--baseline", str(baseline), "--update-baseline"])
            == 0
        )
        capsys.readouterr()
        other = ["bench", "--points", "4", "-B", "64", "--repeat", "1"]
        assert main(other + ["--baseline", str(baseline)]) == 2
        assert "configs differ" in capsys.readouterr().err

    def test_bench_missing_baseline_exits_2(self, tmp_path, capsys):
        assert main(self.FAST + ["--baseline", str(tmp_path / "nope.json")]) == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_bench_corrupt_baseline_exits_2(self, tmp_path, capsys):
        baseline = tmp_path / "bad.json"
        baseline.write_text("{not json")
        assert main(self.FAST + ["--baseline", str(baseline)]) == 2
        assert "bad baseline" in capsys.readouterr().err

    def test_bench_bad_points_exits_2(self, capsys):
        assert main(["bench", "--points", "4,x", "--repeat", "1"]) == 2
        assert "bad --points" in capsys.readouterr().err

    def test_bench_committed_baseline_config_matches_defaults(self):
        """The checked-in baseline gates the default configuration."""
        from repro.search.bench import (
            DEFAULT_BATCH,
            DEFAULT_PROCESSES,
            BenchRecord,
        )

        path = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "BENCH_search.json"
        )
        with open(path, "r", encoding="utf-8") as fh:
            baseline = BenchRecord.from_json(fh.read())
        assert baseline.processes == DEFAULT_PROCESSES
        assert baseline.batch == DEFAULT_BATCH
        assert baseline.identical


class TestTrace:
    def test_trace_audit_is_exact(self, capsys):
        assert main(["trace", "--assert-exact"]) == 0
        out = capsys.readouterr().out
        assert "per-span summary" in out
        assert "communication audit" in out
        assert "-> EXACT" in out

    def test_trace_fig7_exports_chrome_trace(self, tmp_path, capsys):
        assert (
            main(
                [
                    "trace", "--experiment", "fig7", "--pr", "4", "--pc", "2",
                    "--out", str(tmp_path), "--assert-exact",
                ]
            )
            == 0
        )
        files = os.listdir(tmp_path)
        for name in ("trace.json", "audit.csv", "metrics.json", "spans.txt"):
            assert name in files
        import json

        from repro.telemetry.chrome import validate_chrome_trace

        with open(tmp_path / "trace.json", "r", encoding="utf-8") as fh:
            assert validate_chrome_trace(json.load(fh)) > 0

    def test_trace_per_rank_summary(self, capsys):
        assert main(["trace", "--per-rank"]) == 0
        assert "rank" in capsys.readouterr().out

    def test_trace_bad_config_fails_cleanly(self, capsys):
        # steps = 0 gives the audit nothing to compare; exits 2, no traceback.
        assert main(["trace", "--steps", "0"]) == 2
        assert "trace failed" in capsys.readouterr().err

    def test_trace_rejects_unknown_preset(self):
        with pytest.raises(SystemExit):
            main(["trace", "--experiment", "nope"])

    def test_trace_prints_analysis(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "per-rank virtual-time accounting" in out
        assert "critical path:" in out
        assert "critical:" in out and "idle fraction" in out

    def test_trace_traffic_heatmap(self, capsys):
        assert main(["trace", "--traffic"]) == 0
        out = capsys.readouterr().out
        assert "traffic matrix" in out
        assert "src\\dst" in out

    def test_trace_record_round_trips(self, tmp_path, capsys):
        from repro.analysis import read_run_record

        path = tmp_path / "run.json"
        assert main(["trace", "--record", str(path)]) == 0
        assert "record  : wrote" in capsys.readouterr().out
        record = read_run_record(str(path))
        assert record.trainer == "train"
        assert record.meta["experiment"] == "mlp"

    def test_trace_exports_analysis_tables(self, tmp_path, capsys):
        assert main(["trace", "--out", str(tmp_path)]) == 0
        files = os.listdir(tmp_path)
        assert "accounting.csv" in files
        assert "critical_path.csv" in files

    def test_trace_metrics_include_analysis_counters(self, tmp_path, capsys):
        import json

        assert main(["trace", "--out", str(tmp_path)]) == 0
        with open(tmp_path / "metrics.json", "r", encoding="utf-8") as fh:
            names = {row["metric"] for row in json.load(fh)["rows"]}
        assert {
            "analysis.dag_nodes", "analysis.dag_edges",
            "analysis.critical_events", "analysis.critical_seconds",
            "analysis.idle_fraction", "analysis.imbalance",
        } <= names


class TestDiff:
    def _write_record(self, path, machine=None):
        import dataclasses

        import numpy as np

        from repro.analysis import write_run_record
        from repro.dist.train import (
            MLPParams,
            distributed_mlp_train,
            mlp_run_record,
        )
        from repro.machine.params import cori_knl
        from repro.simmpi.engine import SimEngine

        dims = (12, 9, 5)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((dims[0], 32))
        y = rng.integers(0, dims[-1], 32)
        if machine == "derated":
            m = cori_knl()
            machine = dataclasses.replace(
                m, alpha=m.alpha * 4, beta_per_byte=m.beta_per_byte * 2
            )
        engine = SimEngine(4, machine, trace=True)
        _, _, sim = distributed_mlp_train(
            MLPParams.init(dims, seed=0), x, y,
            pr=2, pc=2, batch=8, steps=2, engine=engine,
        )
        write_run_record(
            mlp_run_record(engine, sim, dims=dims, pr=2, pc=2, batch=8, steps=2),
            str(path),
        )

    def test_identical_records_exit_0(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_record(a)
        self._write_record(b)
        assert main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s) -> clean" in out
        assert "gate    : PASS" in out

    def test_derated_machine_exits_1(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_record(a)
        self._write_record(b, machine="derated")
        assert main(["diff", str(a), str(b)]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "REGRESSION: makespan" in captured.err
        assert "span-time" in captured.err

    def test_loose_tolerance_tolerates_derating(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_record(a)
        self._write_record(b, machine="derated")
        assert main(["diff", str(a), str(b), "--time-tol", "50"]) == 0

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        b = tmp_path / "b.json"
        self._write_record(b)
        assert main(["diff", str(tmp_path / "nope.json"), str(b)]) == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_corrupt_current_exits_2(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        self._write_record(a)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["diff", str(a), str(bad)]) == 2
        assert "cannot read current" in capsys.readouterr().err

    def test_perturbed_record_exits_1(self, tmp_path, capsys):
        """The CI failure mode: a hand-perturbed record must fail the gate."""
        import json

        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write_record(a)
        payload = json.loads(a.read_text())
        payload["makespan_s"] *= 1.5
        payload["critical"]["length_s"] = payload["makespan_s"]
        for row in payload["ranks"]:
            row["compute_s"] += payload["makespan_s"] - row["wall_s"]
            row["wall_s"] = payload["makespan_s"]
        b.write_text(json.dumps(payload))
        assert main(["diff", str(a), str(b)]) == 1
        assert "REGRESSION" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])


class TestFaults:
    def test_faults_demo_recovers(self, capsys):
        assert main(["faults"]) == 0
        out = capsys.readouterr().out
        assert "2x2 grid" in out
        assert "fault log:" in out
        assert "rank died" in out
        assert "shrank world to 3 survivors" in out
        assert "recovery: shrank to a" in out
        assert "failed ranks   : [1]" in out
        assert "max |w - serial|" in out
        assert "!" in out  # fault marks on the timeline

    def test_faults_with_plan_file(self, tmp_path, capsys):
        from repro.simmpi.faults import Crash, FaultPlan

        plan = FaultPlan(seed=1, crashes=(Crash(rank=2, at_step=3),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert main(["faults", "--plan", str(path), "--steps", "6"]) == 0
        out = capsys.readouterr().out
        assert "failed ranks   : [2]" in out
        assert "resumed from the step-2 checkpoint" in out

    def test_faults_rejects_tiny_world(self, capsys):
        assert main(["faults", "--ranks", "1"]) == 2

    def test_faults_prints_span_timeline(self, capsys):
        assert main(["faults"]) == 0
        out = capsys.readouterr().out
        assert "#=in span" in out
        assert "recovery" in out

    def test_faults_record_round_trips(self, tmp_path, capsys):
        from repro.analysis import read_run_record

        path = tmp_path / "faults.json"
        assert main(["faults", "--steps", "6", "--record", str(path)]) == 0
        assert "record  : wrote" in capsys.readouterr().out
        record = read_run_record(str(path))
        assert record.trainer == "elastic"
        assert record.meta["failed_ranks"] == [1]

    def test_faults_no_fault_plan_runs_clean(self, tmp_path, capsys):
        from repro.simmpi.faults import FaultPlan

        path = tmp_path / "empty.json"
        path.write_text(FaultPlan().to_json())
        assert main(["faults", "--plan", str(path)]) == 0
        out = capsys.readouterr().out
        assert "recovery: none needed" in out
        assert "failed ranks   : none" in out

    def test_faults_unguarded_bitflip_plan_degrades(self, tmp_path, capsys):
        from repro.simmpi.faults import BitFlipFault, FaultPlan

        plan = FaultPlan(bitflips=(
            BitFlipFault(rank=1, target="matmul", layer=1, step=1,
                         gemm="fwd", element=3, bit=52),
        ))
        path = tmp_path / "flip.json"
        path.write_text(plan.to_json())
        assert main(["faults", "--plan", str(path)]) == 1
        captured = capsys.readouterr()
        assert "1 bit flip(s)" in captured.out
        assert "DEGRADED" in captured.err
        assert "escaped undetected" in captured.err

    def test_faults_same_plan_with_guards_recovers(self, tmp_path, capsys):
        from repro.simmpi.faults import BitFlipFault, FaultPlan

        plan = FaultPlan(bitflips=(
            BitFlipFault(rank=1, target="matmul", layer=1, step=1,
                         gemm="fwd", element=3, bit=52),
        ))
        path = tmp_path / "flip.json"
        path.write_text(plan.to_json())
        assert main(["faults", "--plan", str(path), "--sdc", "correct"]) == 0
        out = capsys.readouterr().out
        assert "ABFT on" in out
        assert "max |w - serial|" in out


class TestChaos:
    FAST = ["chaos", "--trials", "0", "--steps", "6"]

    def test_baseline_gauntlet_exits_0(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "chaos soak: 8 trials" in out
        assert "exact" in out
        assert "every trial recovered bit-identically" in out
        assert "SILENT" not in out

    def test_over_parity_losses_are_declared_not_silent(self, capsys):
        assert main(self.FAST + ["--over-parity"]) == 1
        out = capsys.readouterr().out
        assert "declared-degraded" in out
        assert "declared-failed" in out
        assert "SILENT" not in out

    def test_chaos_artifacts_written(self, tmp_path, capsys):
        import json

        assert main(self.FAST + ["--out", str(tmp_path)]) == 0
        files = os.listdir(tmp_path)
        assert "chaos_summary.json" in files
        assert "trial_crash-1.plan.json" in files
        assert "trial_crash-1.record.json" in files
        summary = json.loads((tmp_path / "chaos_summary.json").read_text())
        assert summary["exit_code"] == 0
        assert len(summary["trials"]) == 8
        assert all(t["outcome"] != "SILENT-DIVERGENCE" for t in summary["trials"])
        from repro.analysis import read_run_record

        record = read_run_record(str(tmp_path / "trial_crash-1.record.json"))
        assert record.trainer == "elastic"
        assert record.ckpt["restores"] > 0

    def test_chaos_random_trials_seeded(self, capsys):
        argv = self.FAST[:1] + ["--trials", "2", "--steps", "6", "--seed", "5"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_chaos_rejects_too_few_steps(self, capsys):
        assert main(["chaos", "--steps", "2"]) == 2
        assert "steps" in capsys.readouterr().err


class TestSDC:
    def test_guarded_gauntlet_all_recovered(self, capsys):
        assert main(["sdc"]) == 0
        out = capsys.readouterr().out
        assert "guards ON" in out
        assert "corrected" in out
        assert "recomputed" in out
        assert "bit-identical" in out
        assert "escaped" not in out

    def test_unguarded_gauntlet_escapes(self, capsys):
        assert main(["sdc", "--no-guard"]) == 2
        captured = capsys.readouterr()
        assert "escaped" in captured.out

    def test_detect_policy_is_loud_but_unrecovered(self, capsys):
        assert main(["sdc", "--policy", "detect"]) == 1
        out = capsys.readouterr().out
        assert "detected-unrecovered" in out

    def test_recompute_policy_with_record(self, tmp_path, capsys):
        from repro.analysis import read_run_record

        path = tmp_path / "sdc.json"
        assert main(["sdc", "--policy", "recompute", "--record", str(path)]) == 0
        assert "record" in capsys.readouterr().out
        record = read_run_record(str(path))
        assert record.config["sdc"] == "recompute"
        assert record.sdc["injected"] >= 1
        assert record.sdc["escaped"] == 0
