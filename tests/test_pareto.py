"""Tests for the Section-4 communication/memory Pareto analysis."""

import pytest

from repro.core.costs import integrated_cost
from repro.core.memory import memory_footprint
from repro.core.pareto import ParetoPoint, comm_memory_frontier
from repro.core.strategy import ProcessGrid, Strategy
from repro.machine.params import cori_knl
from repro.nn import alexnet

NET = alexnet()
M = cori_knl()


class TestParetoPoint:
    def _pt(self, comm, mem):
        strategy = Strategy.same_grid_model(NET, ProcessGrid(1, 2))
        return ParetoPoint(strategy, comm, mem)

    def test_dominance(self):
        assert self._pt(1.0, 1.0).dominates(self._pt(2.0, 2.0))
        assert self._pt(1.0, 2.0).dominates(self._pt(1.0, 3.0))
        assert not self._pt(1.0, 3.0).dominates(self._pt(2.0, 2.0))
        assert not self._pt(1.0, 1.0).dominates(self._pt(1.0, 1.0))


class TestFrontier:
    @pytest.fixture(scope="class")
    def frontier(self):
        return comm_memory_frontier(NET, 2048, 64, M)

    def test_frontier_is_mutually_nondominated(self, frontier):
        points, _ = frontier
        for a in points:
            for b in points:
                assert not a.dominates(b) or a is b

    def test_frontier_sorted_memory_up_comm_down(self, frontier):
        """Along the frontier, buying memory must buy communication."""
        points, _ = frontier
        assert len(points) >= 2
        for a, b in zip(points, points[1:]):
            assert a.memory_elements <= b.memory_elements
            assert a.comm_time >= b.comm_time

    def test_extremes_present(self, frontier):
        """The memory-lean end has Pr > 1 (weights split); pure batch —
        full replication — can only appear at the memory-hungry end."""
        points, _ = frontier
        lean = points[0]
        assert lean.strategy.grid.pr > 1
        assert points[-1].memory_elements >= 2 * 0.9 * NET.total_params / 64 * 1  # sanity

    def test_table_flags_frontier_members(self, frontier):
        points, table = frontier
        flagged = [r for r in table.rows if r["on_frontier"]]
        assert len(flagged) == len(points)

    def test_values_match_direct_evaluation(self, frontier):
        points, _ = frontier
        pt = points[0]
        comm = integrated_cost(NET, 2048, pt.strategy, M).total
        mem = memory_footprint(NET, 2048, pt.strategy).total
        assert comm == pytest.approx(pt.comm_time)
        assert mem == pytest.approx(pt.memory_elements)

    def test_best_comm_point_matches_unconstrained_search(self, frontier):
        """The comm-lean frontier end is at least as good as every fixed
        family's best grid (it includes the per-layer optimum)."""
        points, _ = frontier
        best_comm = min(pt.comm_time for pt in points)
        for grid in ProcessGrid.factorizations(64):
            if grid.pc > 2048:
                continue
            c = integrated_cost(NET, 2048, Strategy.same_grid_model(NET, grid), M).total
            assert best_comm <= c + 1e-15
