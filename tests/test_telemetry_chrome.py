"""Tests for the Chrome trace_event exporter (satellite: schema validation)."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simmpi.engine import SimEngine
from repro.telemetry.chrome import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.spans import span


def _traced_events(p=2):
    def prog(comm):
        with span("work", comm=comm, step=0):
            return comm.allreduce(np.ones(8), algorithm="ring")

    eng = SimEngine(p, trace=True)
    eng.run(prog)
    return eng.tracer.events


@pytest.fixture(scope="module")
def events():
    return _traced_events()


class TestSchema:
    def test_validates_and_counts(self, events):
        obj = chrome_trace(events)
        n = validate_chrome_trace(obj)
        assert n == len(obj["traceEvents"]) > 0

    def test_required_keys_present(self, events):
        for ev in chrome_trace(events)["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0
                assert ev["ts"] >= 0.0

    def test_one_track_per_rank(self, events):
        obj = chrome_trace(events)
        for ev in obj["traceEvents"]:
            assert ev["pid"] == ev["tid"]
        # Metadata names both ranks' tracks.
        meta = [e for e in obj["traceEvents"] if e["ph"] == "M"]
        named = {e["pid"] for e in meta if e["name"] == "process_name"}
        assert named == {0, 1}

    def test_timestamps_consistent_with_virtual_clock(self, events):
        obj = chrome_trace(events)
        spans = [e for e in obj["traceEvents"] if e.get("cat") == "span"]
        assert spans
        t_max_us = max(e.t_end for e in events) * 1e6
        for ev in spans:
            assert 0.0 <= ev["ts"] <= ev["ts"] + ev["dur"] <= t_max_us + 1e-9

    def test_json_roundtrip(self, events):
        obj = chrome_trace(events)
        clone = json.loads(json.dumps(obj))
        assert validate_chrome_trace(clone) == len(obj["traceEvents"])
        assert clone["displayTimeUnit"] == "ms"


class TestValidatorRejects:
    def test_not_a_dict(self):
        with pytest.raises(ConfigurationError):
            validate_chrome_trace([])

    def test_missing_keys(self):
        with pytest.raises(ConfigurationError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})

    def test_bad_phase(self):
        ev = {"name": "x", "ph": "Z", "pid": 0, "tid": 0, "ts": 0.0}
        with pytest.raises(ConfigurationError):
            validate_chrome_trace({"traceEvents": [ev]})

    def test_pid_tid_disagree(self):
        ev = {"name": "x", "ph": "i", "pid": 0, "tid": 1, "ts": 0.0, "s": "t"}
        with pytest.raises(ConfigurationError):
            validate_chrome_trace({"traceEvents": [ev]})

    def test_negative_ts(self):
        ev = {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": -1.0, "dur": 0.0}
        with pytest.raises(ConfigurationError):
            validate_chrome_trace({"traceEvents": [ev]})


class TestWrite:
    def test_write_creates_dirs_and_loadable_file(self, tmp_path, events):
        path = tmp_path / "nested" / "trace.json"
        obj = write_chrome_trace(events, str(path), title="t")
        assert path.exists()
        with open(path, "r", encoding="utf-8") as fh:
            loaded = json.load(fh)
        assert loaded == json.loads(json.dumps(obj))
        assert validate_chrome_trace(loaded) > 0
