"""Randomized (hypothesis) properties of the trace-analysis layer.

Samples grid shapes, layer widths, batch sizes and fault plans the
hand-written tests did not enumerate, holding the two analysis
invariants of the acceptance criteria:

1. per-rank decomposition — ``compute + comm + wait == wall`` exactly,
   for every rank of every traced run; and
2. critical-path bound — the extracted path's virtual length never
   exceeds the run's makespan, and no event has negative slack.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis import critical_path, rank_accounting, validate_run_record
from repro.dist.elastic import elastic_mlp_train, elastic_run_record
from repro.dist.train import MLPParams, distributed_mlp_train, mlp_run_record
from repro.simmpi.engine import SimEngine
from repro.simmpi.faults import Crash, FaultPlan, LinkFault, Straggler


@st.composite
def grids(draw, max_p=6):
    pr = draw(st.integers(1, max_p))
    pc = draw(st.integers(1, max(1, max_p // pr)))
    return pr, pc


def _check_invariants(events, clocks, makespan):
    accounting = rank_accounting(events, clocks=clocks)
    for a in accounting.accounts:
        residual = a.wall_s - (a.compute_s + a.comm_s + a.wait_s)
        assert abs(residual) <= 1e-9 * max(1.0, a.wall_s)
        assert a.compute_s >= -1e-12
    assert accounting.makespan_s <= makespan + 1e-15
    cp = critical_path(events, clocks=clocks)
    assert cp.length_s <= cp.makespan_s + 1e-15
    assert all(s >= -1e-12 for s in cp.slack)
    assert cp.comm_s >= 0.0
    return accounting, cp


@given(grid=grids(), hidden=st.integers(3, 17), batch=st.integers(4, 16))
@settings(max_examples=12, deadline=None)
def test_random_grid_invariants(grid, hidden, batch):
    pr, pc = grid
    if pc > batch or pr * pc < 2:
        return
    dims = (9, hidden, 4)
    rng = np.random.default_rng(hidden)
    x = rng.standard_normal((dims[0], 2 * batch))
    y = rng.integers(0, dims[-1], 2 * batch)
    engine = SimEngine(pr * pc, trace=True)
    _, _, sim = distributed_mlp_train(
        MLPParams.init(dims, seed=hidden), x, y,
        pr=pr, pc=pc, batch=batch, steps=2, engine=engine,
    )
    events = engine.tracer.canonical()
    _check_invariants(events, sim.clocks, sim.time)
    record = mlp_run_record(
        engine, sim, dims=dims, pr=pr, pc=pc, batch=batch, steps=2
    )
    validate_run_record(record.to_dict())


@given(
    crash_rank=st.integers(0, 3),
    crash_step=st.integers(1, 5),
    straggler=st.floats(1.0, 2.0),
    link_latency=st.floats(1.0, 4.0),
    seed=st.integers(0, 3),
)
@settings(max_examples=8, deadline=None)
def test_random_fault_plan_invariants(
    crash_rank, crash_step, straggler, link_latency, seed
):
    dims = (8, 10, 6)
    batch, steps = 8, 6
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((dims[0], 4 * batch))
    y = rng.integers(0, dims[-1], 4 * batch)
    plan = FaultPlan(
        seed=seed,
        crashes=(Crash(rank=crash_rank, at_step=crash_step),),
        links=(LinkFault(src=0, dst=3, latency_factor=link_latency),),
        stragglers=(Straggler(rank=2, factor=straggler),),
    )
    result = elastic_mlp_train(
        MLPParams.init(dims, seed=seed), x, y, pr=2, pc=2,
        batch=batch, steps=steps, checkpoint_every=2, faults=plan,
        trace=True,
    )
    events = result.engine.tracer.canonical()
    clocks = result.sim.clocks
    _check_invariants(events, clocks, max(clocks))
    record = elastic_run_record(result, batch=batch, steps=steps)
    validate_run_record(record.to_dict())
    assert record.dropped == 0
