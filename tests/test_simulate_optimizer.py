"""Tests for the simulation driver and strategy search (repro.core)."""

import pytest

from repro.core.optimizer import best_strategy, enumerate_grids, evaluate_grids
from repro.core.simulate import simulate_epoch, simulate_iteration
from repro.core.strategy import Placement, ProcessGrid, Strategy
from repro.errors import ConfigurationError
from repro.machine.compute import ComputeModel
from repro.machine.params import cori_knl
from repro.nn import alexnet

NET = alexnet()
M = cori_knl()
CM = ComputeModel.knl_alexnet()


class TestSimulateIteration:
    def test_total_is_comm_plus_compute(self):
        s = Strategy.same_grid_model(NET, ProcessGrid(4, 8))
        it = simulate_iteration(NET, 256, s, M, CM)
        assert it.total == pytest.approx(it.comm_time + it.compute_time)

    def test_overlap_reduces_total(self):
        s = Strategy.same_grid_model(NET, ProcessGrid(4, 8))
        plain = simulate_iteration(NET, 256, s, M, CM)
        ov = simulate_iteration(NET, 256, s, M, CM, overlap=True)
        assert ov.total < plain.total
        assert ov.total >= plain.compute_time

    def test_compute_constant_across_grids_of_same_p(self):
        """Same workload per process -> same compute bar (paper Sec. 3)."""
        times = {
            grid: simulate_iteration(
                NET, 2048, Strategy.same_grid_model(NET, grid), M, CM
            ).compute_time
            for grid in ProcessGrid.factorizations(64)
        }
        values = set(round(v, 15) for v in times.values())
        assert len(values) == 1

    def test_batch_comm_time_subset_of_comm(self):
        s = Strategy.same_grid_model(NET, ProcessGrid(4, 8))
        it = simulate_iteration(NET, 256, s, M, CM)
        assert 0 < it.batch_comm_time < it.comm_time


class TestSimulateEpoch:
    def test_epoch_multiplies_by_iterations(self):
        s = Strategy.same_grid_model(NET, ProcessGrid(2, 4))
        pt = simulate_epoch(NET, 256, s, M, CM, dataset_size=1_200_000)
        assert pt.iterations_per_epoch == pytest.approx(1_200_000 / 256)
        assert pt.total_epoch == pytest.approx(pt.iteration.total * pt.iterations_per_epoch)

    def test_defaults_to_table_dataset(self):
        s = Strategy.same_grid_model(NET, ProcessGrid(1, 4))
        pt = simulate_epoch(NET, 256, s, M, CM)
        assert pt.iterations_per_epoch == pytest.approx(1_200_000 / 256)

    def test_bad_dataset_size(self):
        s = Strategy.same_grid_model(NET, ProcessGrid(1, 4))
        with pytest.raises(ConfigurationError):
            simulate_epoch(NET, 256, s, M, CM, dataset_size=0)

    def test_label(self):
        s = Strategy.same_grid_model(NET, ProcessGrid(16, 32))
        assert simulate_epoch(NET, 2048, s, M, CM).label == "16x32"


class TestEnumerateGrids:
    def test_batch_filter(self):
        grids = enumerate_grids(512, batch=64)
        assert all(g.pc <= 64 for g in grids)
        assert ProcessGrid(8, 64) in grids

    def test_max_pc_constraint(self):
        """Sec. 4: the user may cap batch-parallel width for accuracy."""
        grids = enumerate_grids(512, batch=2048, max_pc=32)
        assert all(g.pc <= 32 for g in grids)

    def test_pure_model_always_feasible(self):
        # 1x7 needs B >= 7 and is dropped; 7x1 (pure model) survives.
        grids = enumerate_grids(7, batch=2)
        assert grids == (ProcessGrid(7, 1),)

    def test_invalid_max_pc(self):
        with pytest.raises(ConfigurationError):
            enumerate_grids(8, max_pc=0)


class TestEvaluateAndBest:
    def test_evaluate_covers_all_feasible_grids(self):
        pts = evaluate_grids(NET, 2048, 64, M, CM)
        assert len(pts) == len(enumerate_grids(64, batch=2048))

    def test_integrated_beats_pure_batch_at_large_p(self):
        """The paper's headline: neither pure extreme is optimal at scale."""
        pts = evaluate_grids(NET, 2048, 512, M, CM)
        by_grid = {pt.label: pt.total_epoch for pt in pts}
        best_label = min(by_grid, key=by_grid.get)
        assert best_label not in ("1x512", "512x1")

    def test_pure_batch_wins_at_small_p(self):
        """Fig. 6(a): at P=8 compute dominates and integration does not pay."""
        pts = evaluate_grids(NET, 2048, 8, M, CM)
        best = min(pts, key=lambda p: p.total_epoch)
        assert best.strategy.grid.pr == 1

    def test_conv_batch_family_beats_uniform_family_at_512(self):
        """Fig. 7 improves on Fig. 6."""
        uniform = min(
            evaluate_grids(NET, 2048, 512, M, CM, family=Strategy.same_grid_model),
            key=lambda p: p.total_epoch,
        )
        improved = min(
            evaluate_grids(NET, 2048, 512, M, CM, family=Strategy.conv_batch_fc_model),
            key=lambda p: p.total_epoch,
        )
        assert improved.total_epoch < uniform.total_epoch

    def test_best_strategy_returns_feasible_choice(self):
        choice = best_strategy(NET, 2048, 512, M, CM)
        assert choice.grid.p == 512
        assert choice.total_epoch > 0

    def test_best_strategy_never_worse_than_pure_batch(self):
        pure = evaluate_grids(NET, 2048, 512, M, CM)[0]
        assert pure.strategy.grid.pr == 1
        choice = best_strategy(NET, 2048, 512, M, CM)
        assert choice.total_epoch <= pure.total_epoch

    def test_best_strategy_scales_beyond_batch_with_domain(self):
        """P > B is only feasible via domain/model splits (Fig. 10)."""
        choice = best_strategy(NET, 512, 1024, M, CM, allow_domain=True)
        assert choice.grid.p == 1024
        assert choice.grid.pr > 1

    def test_best_strategy_respects_max_pc(self):
        choice = best_strategy(NET, 2048, 512, M, CM, max_pc=16)
        assert choice.grid.pc <= 16

    def test_conv_pure_batch_flag(self):
        choice = best_strategy(NET, 2048, 512, M, CM, conv_pure_batch=True)
        placements = choice.strategy.placements
        kinds = [w.kind for w in NET.weighted_layers]
        for kind, pl in zip(kinds, placements):
            if kind == "conv":
                assert pl is Placement.BATCH
