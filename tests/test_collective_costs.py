"""Tests for the closed-form collective cost models (repro.collectives)."""

import pytest
from hypothesis import given, strategies as st

from repro.collectives.cost import (
    CollectiveCost,
    allgather_bruck,
    allgather_ring,
    allreduce_recursive_doubling,
    allreduce_ring,
    broadcast_binomial,
    halo_exchange,
    point_to_point,
    reduce_scatter_ring,
)
from repro.errors import ConfigurationError
from repro.machine.params import MachineParams, cori_knl


M = MachineParams(alpha=1e-6, beta_per_byte=1e-9, element_bytes=4)  # beta = 4e-9/elt


class TestCollectiveCost:
    def test_total_is_sum(self):
        c = CollectiveCost(1.0, 2.0)
        assert c.total == 3.0

    def test_addition_and_scaling(self):
        c = CollectiveCost(1.0, 2.0) + CollectiveCost(0.5, 0.25)
        assert (c.latency, c.bandwidth) == (1.5, 2.25)
        assert (2 * c).total == 2 * c.total

    def test_zero(self):
        assert CollectiveCost.zero().total == 0.0


class TestAllGather:
    def test_bruck_matches_paper_term(self):
        """alpha*ceil(log P) + beta*n*(P-1)/P — the Eq. 3/8 all-gather."""
        c = allgather_bruck(8, 1000, M)
        assert c.latency == pytest.approx(3 * 1e-6)
        assert c.bandwidth == pytest.approx(4e-9 * 1000 * 7 / 8)

    def test_bruck_nonpower_of_two_rounds_up(self):
        c = allgather_bruck(5, 100, M)
        assert c.latency == pytest.approx(3 * 1e-6)  # ceil(log2 5) = 3

    def test_ring_pays_linear_latency(self):
        c = allgather_ring(8, 1000, M)
        assert c.latency == pytest.approx(7 * 1e-6)
        assert c.bandwidth == pytest.approx(allgather_bruck(8, 1000, M).bandwidth)

    def test_single_process_is_free(self):
        assert allgather_bruck(1, 1000, M).total == 0.0


class TestAllReduce:
    def test_ring_is_twice_allgather(self):
        """Eq. 4's 'factor of 2 is merely due to the all-reduce algorithm'."""
        ar = allreduce_ring(16, 5000, M)
        ag = allgather_bruck(16, 5000, M)
        assert ar.bandwidth == pytest.approx(2 * ag.bandwidth)
        assert ar.latency == pytest.approx(2 * ag.latency)

    def test_ring_exact_latency_variant(self):
        c = allreduce_ring(16, 5000, M, exact_latency=True)
        assert c.latency == pytest.approx(2 * 15 * 1e-6)

    def test_recursive_doubling_power_of_two(self):
        c = allreduce_recursive_doubling(8, 1000, M)
        assert c.latency == pytest.approx(3e-6)
        assert c.bandwidth == pytest.approx(4e-9 * 1000 * 3)

    def test_recursive_doubling_extra_round_when_not_pof2(self):
        c = allreduce_recursive_doubling(6, 1000, M)
        assert c.latency == pytest.approx(4e-6)

    def test_ring_beats_rd_for_large_messages(self):
        """The paper's choice of ring for the 61M-element dW reduction."""
        big = 61_000_000
        assert allreduce_ring(512, big, M).total < allreduce_recursive_doubling(512, big, M).total

    def test_rd_beats_ring_exact_for_tiny_messages(self):
        assert (
            allreduce_recursive_doubling(512, 1, M).total
            < allreduce_ring(512, 1, M, exact_latency=True).total
        )

    def test_reduce_scatter_is_half_a_ring_allreduce(self):
        rs = reduce_scatter_ring(8, 1000, M)
        ar = allreduce_ring(8, 1000, M)
        assert rs.bandwidth == pytest.approx(ar.bandwidth / 2)


class TestOthers:
    def test_broadcast(self):
        c = broadcast_binomial(8, 1000, M)
        assert c.latency == pytest.approx(3e-6)
        assert c.bandwidth == pytest.approx(3 * 4e-9 * 1000)

    def test_halo_exchange_single_message(self):
        c = halo_exchange(500, M)
        assert c.latency == pytest.approx(1e-6)
        assert c.bandwidth == pytest.approx(4e-9 * 500)

    def test_point_to_point(self):
        assert point_to_point(100, M).total == pytest.approx(1e-6 + 4e-9 * 100)

    @pytest.mark.parametrize(
        "fn", [allgather_bruck, allreduce_ring, reduce_scatter_ring, broadcast_binomial]
    )
    def test_validation(self, fn):
        with pytest.raises(ConfigurationError):
            fn(0, 100, M)
        with pytest.raises(ConfigurationError):
            fn(4, -1, M)


class TestProperties:
    @given(p=st.integers(2, 1024), n=st.integers(0, 10**8))
    def test_bandwidth_term_bounded_by_full_volume(self, p, n):
        """(p-1)/p * n never exceeds n; ring all-reduce never exceeds 2n."""
        m = cori_knl()
        assert allgather_bruck(p, n, m).bandwidth <= m.beta * n + 1e-18
        assert allreduce_ring(p, n, m).bandwidth <= 2 * m.beta * n + 1e-18

    @given(p=st.integers(2, 512), n=st.integers(1, 10**7))
    def test_allreduce_bandwidth_increases_with_p(self, p, n):
        m = cori_knl()
        assert allreduce_ring(p + 1, n, m).bandwidth >= allreduce_ring(p, n, m).bandwidth

    @given(n=st.integers(0, 10**7))
    def test_costs_nonnegative(self, n):
        m = cori_knl()
        for p in (1, 2, 7, 64):
            for fn in (allgather_bruck, allgather_ring, allreduce_ring, broadcast_binomial):
                c = fn(p, n, m)
                assert c.latency >= 0 and c.bandwidth >= 0
