"""Tests for the host-time self-profiler (``repro.profile``).

The headline invariant — profiling never changes the run — is checked
bitwise on both engine backends; the rest covers session lifecycle,
attribution arithmetic (rows sum to wall by construction), the hook
counters, the exporters, the v5 RunRecord host block, and the
``resolve_engine`` coercion the CLI and trainers share.
"""

import json
import time

import numpy as np
import pytest

from repro.analysis.record import (
    HOST_COUNTER_KEYS,
    RUN_RECORD_SCHEMA,
    RunRecord,
    validate_run_record,
)
from repro.dist.summa2d import summa_train
from repro.dist.train import MLPParams, distributed_mlp_train, mlp_run_record
from repro.errors import ConfigurationError, ShapeError
from repro.profile import (
    OVERHEAD_BUDGET,
    ProfileSession,
    SUBSYSTEMS,
    active_session,
    collapsed_lines,
    host_block,
    maybe_profile,
    write_collapsed,
    write_flamegraph_html,
    write_pprof_json,
)
from repro.profile import hooks as profile_hooks
from repro.profile.export import PPROF_SCHEMA
from repro.profile.sampler import Sampler
from repro.simmpi.engine import SimEngine, resolve_engine

DIMS = (12, 10, 6)


def _train(backend, profile=None, trace=False, steps=2):
    rng = np.random.default_rng(5)
    x = rng.standard_normal((DIMS[0], 16))
    y = rng.integers(0, DIMS[-1], 16)
    params0 = MLPParams.init(DIMS, seed=1)
    engine = SimEngine(4, backend=backend, trace=trace)
    weights, losses, sim = distributed_mlp_train(
        params0, x, y, pr=2, pc=2, batch=8, steps=steps,
        engine=engine, profile=profile,
    )
    return weights, losses, sim, engine


class TestBitIdentity:
    """Profiling is observability-only: outputs are bit-identical."""

    @pytest.mark.parametrize("backend", ["thread", "event"])
    def test_profiled_equals_unprofiled(self, backend):
        w0, l0, s0, e0 = _train(backend, trace=True)
        w1, l1, s1, e1 = _train(backend, profile=ProfileSession(), trace=True)
        assert l0 == l1
        assert s0.clocks == s1.clocks
        assert all(a.tobytes() == b.tobytes() for a, b in zip(w0, w1))
        assert e0.tracer.canonical() == e1.tracer.canonical()


class TestSessionLifecycle:
    def test_bad_hz_rejected(self):
        with pytest.raises(ConfigurationError):
            ProfileSession(hz=0)
        with pytest.raises(ConfigurationError):
            ProfileSession(hz=-5)

    def test_bad_max_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            ProfileSession(max_samples=-1)

    def test_report_requires_closed_session(self):
        with pytest.raises(RuntimeError):
            ProfileSession().report()

    def test_single_use(self):
        session = ProfileSession()
        with session:
            pass
        with pytest.raises(RuntimeError):
            session.__enter__()

    def test_only_one_active_session_per_process(self):
        with ProfileSession():
            with pytest.raises(RuntimeError):
                ProfileSession().__enter__()
        # The failed enter must not have clobbered the hook slot.
        assert profile_hooks.ACTIVE is None

    def test_active_session_lookup(self):
        assert active_session() is None
        with ProfileSession() as session:
            assert active_session() is session
        assert active_session() is None

    def test_maybe_profile_none_is_noop(self):
        with maybe_profile(None):
            assert active_session() is None

    def test_maybe_profile_enters_the_session(self):
        session = ProfileSession()
        with maybe_profile(session):
            assert active_session() is session
        assert session.closed


@pytest.fixture(scope="module")
def profiled():
    """One profiled traced event-backend run, shared across report tests.

    The trailing sleep is idle host time *inside* the profiled window:
    it guarantees the sampler lands ticks even when the training run
    itself finishes in a handful of milliseconds on a fast host.
    """
    session = ProfileSession(hz=499)
    with session:
        out = _train("event", trace=True, steps=3)
        time.sleep(0.08)
    return session, out


class TestReport:
    def test_rows_sum_to_wall_by_construction(self, profiled):
        session, _ = profiled
        report = session.report()
        assert report.ticks > 0
        assert report.attribution_total_s == pytest.approx(report.wall_s)
        assert {row["subsystem"] for row in report.rows} == set(SUBSYSTEMS)
        assert all(row["host_s"] >= 0.0 for row in report.rows)
        assert sum(row["share"] for row in report.rows) == pytest.approx(1.0)

    def test_hook_counters_saw_the_run(self, profiled):
        session, _ = profiled
        counters = session.report().counters
        assert counters["runs"] == 1
        assert counters["msgs_sent"] > 0
        assert counters["msgs_delivered"] > 0
        assert counters["switches"] > 0
        assert counters["trace_records"] > 0

    def test_derived_metrics(self, profiled):
        session, _ = profiled
        report = session.report()
        msgs = report.counters["msgs_sent"]
        assert report.us_per_msg_allin == pytest.approx(
            1e6 * report.wall_s / msgs
        )
        assert report.us_per_switch is not None and report.us_per_switch >= 0
        assert report.us_per_msg is not None and report.us_per_msg >= 0

    def test_overhead_measured_and_bounded(self, profiled):
        session, _ = profiled
        report = session.report()
        assert report.sampler_busy_s > 0
        # Loose sanity bound only: the precise <5% budget gate runs in
        # benchmarks/bench_profile.py over a long window; one short
        # session on a noisy host can wobble.
        assert 0.0 < report.overhead_frac < OVERHEAD_BUDGET * 3

    def test_to_dict_schema(self, profiled):
        session, _ = profiled
        payload = session.report().to_dict()
        assert payload["schema"] == "repro.profile.report/v1"
        assert payload["overhead_budget"] == OVERHEAD_BUDGET
        for key in ("wall_s", "ticks", "throttled", "rows", "counters",
                    "samples", "samples_dropped"):
            assert key in payload

    def test_samples_correlate_virtual_time(self, profiled):
        session, _ = profiled
        for sample in session.samples:
            d = sample.to_dict()
            assert d["subsystem"] in SUBSYSTEMS
            assert d["t_host_s"] >= 0.0
            assert d["weight"] > 0.0
            if d["t_virtual_s"] is not None:
                assert d["t_virtual_s"] >= 0.0

    def test_throttles_at_absurd_rates(self):
        session = ProfileSession(hz=100_000)
        with session:
            time.sleep(0.05)
        report = session.report()
        # The pacer must refuse to burn the budget chasing 100kHz.
        assert report.throttled > 0
        assert report.ticks > 0


class TestHostBlock:
    def test_empty_for_fresh_engine(self):
        assert host_block(SimEngine(2)) == {}

    def test_wall_only_for_unprofiled_run(self):
        _, _, _, engine = _train("event")
        block = host_block(engine)
        assert set(block) == {"wall_s"}
        assert block["wall_s"] > 0

    def test_counters_for_profiled_run(self, profiled):
        session, (_, _, _, engine) = profiled
        block = host_block(engine)
        assert set(block) == {"wall_s"} | set(HOST_COUNTER_KEYS)
        assert block["samples"] == session.ticks
        assert block["samples_dropped"] == session.samples_dropped

    def test_run_record_round_trip(self, profiled):
        _, (_, _, sim, engine) = profiled
        record = mlp_run_record(
            engine, sim, dims=DIMS, pr=2, pc=2, batch=8, steps=3,
            host=host_block(engine),
        )
        payload = record.to_dict()
        assert payload["schema"] == RUN_RECORD_SCHEMA
        validate_run_record(payload)
        again = RunRecord.from_dict(payload)
        assert again.host == record.host

    def test_host_block_is_opt_in(self, profiled):
        _, (_, _, sim, engine) = profiled
        record = mlp_run_record(engine, sim, dims=DIMS, pr=2, pc=2,
                                batch=8, steps=3)
        assert record.host == {}
        assert "host" not in record.to_dict()

    @pytest.mark.parametrize("host", [
        {"wall_s": -1.0},
        {"samples": -1},
        {"samples": 1.5},
        {"mystery": 3},
    ])
    def test_invalid_host_blocks_rejected(self, profiled, host):
        _, (_, _, sim, engine) = profiled
        payload = mlp_run_record(
            engine, sim, dims=DIMS, pr=2, pc=2, batch=8, steps=3,
        ).to_dict()
        payload["host"] = host
        with pytest.raises(ConfigurationError):
            validate_run_record(payload)


class TestSampler:
    def test_each_tick_carries_one_weight_unit(self):
        sampler = Sampler(profile_hooks.HookCounters(), hz=100.0, max_samples=10)
        for _ in range(3):
            sampler.sample_once()
        assert sampler.ticks == 3
        assert sum(sampler.subsystem_weight.values()) == pytest.approx(3.0)

    def test_sample_cap_drops_detail_not_attribution(self):
        sampler = Sampler(profile_hooks.HookCounters(), hz=100.0, max_samples=0)
        sampler.sample_once()
        # The calling thread is busy in this very function, so a detail
        # record was attempted and dropped — but the aggregate weight
        # and collapsed stack were kept.
        assert sampler.ticks == 1
        assert sampler.samples == []
        assert sampler.samples_dropped >= 1
        assert sum(sampler.subsystem_weight.values()) == pytest.approx(1.0)
        assert sampler.collapsed

    def test_hook_run_bookkeeping(self):
        hooks = profile_hooks.HookCounters()
        hooks.note_run_start(None)
        assert hooks.runs == 1 and hooks.runs_active == 1
        hooks.note_run_end(None)
        hooks.note_run_end(None)  # never goes negative
        assert hooks.runs_active == 0
        hooks.note_switches(5)
        assert hooks.counters()["switches"] == 5


class TestExport:
    COLLAPSED = {
        ("a.py:f", "b.py:g"): 1.5,
        ("a.py:f",): 0.25,
        ("z.py:h",): 0.0001,  # rounds to zero milliticks
    }

    def test_collapsed_lines(self):
        assert collapsed_lines(self.COLLAPSED) == [
            "a.py:f 250",
            "a.py:f;b.py:g 1500",
        ]

    def test_write_collapsed(self, tmp_path):
        path = tmp_path / "collapsed.txt"
        assert write_collapsed(self.COLLAPSED, str(path)) == 2
        assert path.read_text().splitlines() == collapsed_lines(self.COLLAPSED)

    def test_flamegraph_html(self, tmp_path):
        path = tmp_path / "flame.html"
        write_flamegraph_html(self.COLLAPSED, str(path), subtitle="2 ticks")
        doc = path.read_text()
        assert doc.startswith("<!doctype html>")
        assert "<script" not in doc  # self-contained, no JS
        assert "a.py:f" in doc and "b.py:g" in doc
        assert "2 ticks" in doc

    def test_flamegraph_empty(self, tmp_path):
        path = tmp_path / "flame.html"
        write_flamegraph_html({}, str(path))
        assert "(no busy samples recorded)" in path.read_text()

    def test_pprof_json(self, tmp_path):
        collapsed = {("a.py:f", "b.py:g"): 1.5, ("a.py:f",): 0.25}
        path = tmp_path / "pprof.json"
        payload = write_pprof_json(collapsed, str(path), period_ns=2_000_000)
        assert payload["schema"] == PPROF_SCHEMA
        assert json.loads(path.read_text()) == payload
        functions = {f["id"]: f for f in payload["function"]}
        locations = {loc["id"]: loc for loc in payload["location"]}
        assert len(functions) == 2 and len(locations) == 2
        for sample in payload["sample"]:
            assert all(lid in locations for lid in sample["location"])
        # Location IDs are leaf-first: the two-frame stack leads with g.
        deep = next(s for s in payload["sample"] if len(s["location"]) == 2)
        leaf = functions[locations[deep["location"][0]]["function"]]
        assert leaf["name"] == "g" and leaf["filename"] == "b.py"
        assert deep["value"] == [1500, 3_000_000]


class TestResolveEngine:
    def test_unknown_backend_lists_valid_ones(self):
        with pytest.raises(ConfigurationError) as err:
            resolve_engine("gpu", 4)
        msg = str(err.value)
        assert "'gpu'" in msg
        assert "thread" in msg and "event" in msg

    @pytest.mark.parametrize("name", ["thread", "event"])
    def test_backend_names_coerce(self, name):
        engine = resolve_engine(name, 4)
        assert isinstance(engine, SimEngine)
        assert engine.backend == name and engine.size == 4

    def test_none_builds_threaded_default(self):
        assert resolve_engine(None, 3).backend == "thread"

    def test_prebuilt_engine_passes_through(self):
        engine = SimEngine(4, backend="event")
        assert resolve_engine(engine, 4) is engine

    def test_prebuilt_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_engine(SimEngine(4), 6)


class TestSummaTrain:
    def _ab(self):
        rng = np.random.default_rng(0)
        return rng.standard_normal((8, 12)), rng.standard_normal((12, 6))

    @pytest.mark.parametrize("backend", ["thread", "event"])
    def test_matches_numpy(self, backend):
        a, b = self._ab()
        c, sim, engine = summa_train(a, b, pr=2, pc=2, engine=backend)
        assert engine.backend == backend
        np.testing.assert_allclose(c, a @ b, rtol=1e-12, atol=1e-12)

    def test_profiled_bit_identical(self):
        a, b = self._ab()
        c0, s0, e0 = summa_train(a, b, pr=2, pc=2, engine="event", trace=True)
        c1, s1, e1 = summa_train(a, b, pr=2, pc=2, engine="event", trace=True,
                                 profile=ProfileSession())
        assert c0.tobytes() == c1.tobytes()
        assert s0.clocks == s1.clocks
        assert e0.tracer.canonical() == e1.tracer.canonical()

    def test_nonconforming_shapes_rejected(self):
        a, b = self._ab()
        with pytest.raises(ShapeError):
            summa_train(a, b[:-1], pr=2, pc=2)
