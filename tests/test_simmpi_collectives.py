"""Tests for the executable collective algorithms (repro.simmpi.collops):
result correctness against naive references, sub-communicators, and
emergent virtual timings against the closed-form cost models."""

import numpy as np
import pytest

from repro.collectives.cost import allgather_bruck as ag_cost
from repro.collectives.cost import allreduce_recursive_doubling as rd_cost
from repro.collectives.cost import allreduce_ring as ar_cost
from repro.errors import RankFailedError
from repro.machine.params import MachineParams, cori_knl
from repro.simmpi.engine import SimEngine

SIZES = [1, 2, 3, 4, 5, 7, 8, 9]


def run(size, prog, machine=None, **kwargs):
    return SimEngine(size, machine, **kwargs).run(prog)


class TestAllGather:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("algorithm", ["bruck", "ring", "naive"])
    def test_gathers_in_rank_order(self, size, algorithm):
        def prog(comm):
            block = np.full((2,), float(comm.rank))
            return comm.allgather(block, algorithm=algorithm)

        res = run(size, prog)
        expected = np.repeat(np.arange(size, dtype=float), 2)
        for value in res.values:
            np.testing.assert_array_equal(value, expected)

    @pytest.mark.parametrize("size", [2, 3, 4, 6])
    def test_gather_along_other_axis(self, size):
        def prog(comm):
            block = np.full((3, 1), float(comm.rank))
            return comm.allgather(block, axis=1)

        res = run(size, prog)
        assert res[0].shape == (3, size)
        np.testing.assert_array_equal(res[0][0], np.arange(size, dtype=float))

    @pytest.mark.parametrize("size", [2, 4, 5])
    def test_unequal_blocks(self, size):
        def prog(comm):
            block = np.arange(comm.rank + 1, dtype=float)
            return comm.allgather(block)

        res = run(size, prog)
        expected = np.concatenate([np.arange(r + 1, dtype=float) for r in range(size)])
        np.testing.assert_array_equal(res[0], expected)

    def test_allgather_object(self):
        def prog(comm):
            return comm.allgather_object({"rank": comm.rank})

        res = run(3, prog)
        assert res[1] == [{"rank": 0}, {"rank": 1}, {"rank": 2}]

    def test_unknown_algorithm(self):
        def prog(comm):
            comm.allgather(np.zeros(2), algorithm="hypercube")

        with pytest.raises(RankFailedError):
            run(2, prog)


class TestAllReduce:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("algorithm", ["ring", "rd", "naive"])
    def test_sums_across_ranks(self, size, algorithm):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((size, 13))

        def prog(comm):
            return comm.allreduce(data[comm.rank].copy(), algorithm=algorithm)

        res = run(size, prog)
        expected = data.sum(axis=0)
        for value in res.values:
            np.testing.assert_allclose(value, expected, rtol=1e-12)

    @pytest.mark.parametrize("size", [2, 3, 8])
    def test_preserves_shape(self, size):
        def prog(comm):
            return comm.allreduce(np.ones((3, 4, 2)))

        res = run(size, prog)
        assert res[0].shape == (3, 4, 2)
        np.testing.assert_array_equal(res[0], size * np.ones((3, 4, 2)))

    def test_small_arrays_fewer_elements_than_ranks(self):
        def prog(comm):
            return comm.allreduce(np.array([float(comm.rank)]))

        res = run(7, prog)
        assert res[3][0] == pytest.approx(21.0)

    def test_input_not_mutated(self):
        def prog(comm):
            x = np.full(5, float(comm.rank))
            comm.allreduce(x)
            return x

        res = run(4, prog)
        np.testing.assert_array_equal(res[2], np.full(5, 2.0))

    def test_rejects_non_array(self):
        def prog(comm):
            comm.allreduce([1, 2, 3])  # type: ignore[arg-type]

        with pytest.raises(RankFailedError):
            run(2, prog)


class TestBcastBarrierGather:
    @pytest.mark.parametrize("size", [1, 2, 5, 8])
    @pytest.mark.parametrize("root_frac", [0.0, 0.5, 1.0])
    def test_bcast_from_any_root(self, size, root_frac):
        root = min(size - 1, int(root_frac * size))

        def prog(comm):
            obj = {"v": 42} if comm.rank == root else None
            return comm.bcast(obj, root=root)

        for value in run(size, prog).values:
            assert value == {"v": 42}

    @pytest.mark.parametrize("size", [2, 3, 6])
    def test_gather_at_root(self, size):
        def prog(comm):
            return comm.gather(comm.rank * 2, root=1)

        res = run(size, prog)
        assert res[1] == [2 * r for r in range(size)]
        assert res[0] is None

    @pytest.mark.parametrize("size", [2, 4, 7])
    def test_barrier_synchronises_clocks(self, size):
        def prog(comm):
            comm.advance(float(comm.rank))  # skew the clocks
            comm.barrier()
            return comm.clock

        res = run(size, prog, machine=MachineParams(alpha=0.0, beta_per_byte=0.0))
        # With a free network the barrier aligns everyone to the slowest.
        assert min(res.values) >= size - 1


class TestSplit:
    def test_grid_split_2x3(self):
        def prog(comm):
            r, c = divmod(comm.rank, 3)
            row = comm.split(color=r)  # ranks with same r
            col = comm.split(color=c)  # ranks with same c
            row_sum = row.allreduce(np.array([float(comm.rank)]))[0]
            col_sum = col.allreduce(np.array([float(comm.rank)]))[0]
            return row.size, col.size, row_sum, col_sum

        res = run(6, prog)
        for rank, (rs, cs, rsum, csum) in enumerate(res.values):
            r, c = divmod(rank, 3)
            assert (rs, cs) == (3, 2)
            assert rsum == sum(3 * r + j for j in range(3))
            assert csum == c + (c + 3)

    def test_split_key_reorders(self):
        def prog(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reverse order
            return sub.rank

        res = run(4, prog)
        assert list(res.values) == [3, 2, 1, 0]

    def test_nested_split(self):
        def prog(comm):
            half = comm.split(color=comm.rank // 4)
            quarter = half.split(color=half.rank // 2)
            return quarter.size, quarter.world_ranks

        res = run(8, prog)
        assert res[0] == (2, (0, 1))
        assert res[7] == (2, (6, 7))

    def test_messages_do_not_cross_communicators(self):
        def prog(comm):
            sub = comm.split(color=0)
            if comm.rank == 0:
                comm.send("world", 1, tag=9)
                sub.send("sub", 1, tag=9)
                return None
            a = sub.recv(0, tag=9)
            b = comm.recv(0, tag=9)
            return a, b

        res = run(2, prog)
        assert res[1] == ("sub", "world")


class TestEmergentTiming:
    """The simulator's virtual timings must match the closed forms.

    All payloads are float32 so that one element = machine.element_bytes.
    """

    def test_ring_allreduce_matches_exact_formula(self):
        m = cori_knl()
        p, n = 8, 80_000

        def prog(comm):
            comm.allreduce(np.ones(n, dtype=np.float32))
            return comm.clock

        res = SimEngine(p, m).run(prog)
        predicted = ar_cost(p, n, m, exact_latency=True).total
        assert res.time == pytest.approx(predicted, rel=0.02)

    def test_bruck_allgather_matches_formula(self):
        m = cori_knl()
        p, n = 8, 80_000

        def prog(comm):
            comm.allgather(np.ones(n // p, dtype=np.float32))
            return comm.clock

        res = SimEngine(p, m).run(prog)
        predicted = ag_cost(p, n, m).total
        assert res.time == pytest.approx(predicted, rel=0.02)

    def test_recursive_doubling_matches_formula_pof2(self):
        m = cori_knl()
        p, n = 8, 50_000

        def prog(comm):
            comm.allreduce(np.ones(n, dtype=np.float32), algorithm="rd")
            return comm.clock

        res = SimEngine(p, m).run(prog)
        predicted = rd_cost(p, n, m).total
        assert res.time == pytest.approx(predicted, rel=0.02)

    def test_ring_beats_rd_for_large_messages_in_simulation(self):
        """The Eq. 4 algorithm choice, observed end-to-end."""
        m = cori_knl()
        p, n = 8, 400_000

        def ring(comm):
            comm.allreduce(np.ones(n, dtype=np.float32), algorithm="ring")
            return comm.clock

        def rd(comm):
            comm.allreduce(np.ones(n, dtype=np.float32), algorithm="rd")
            return comm.clock

        t_ring = SimEngine(p, m).run(ring).time
        t_rd = SimEngine(p, m).run(rd).time
        assert t_ring < t_rd


class TestTracing:
    def test_trace_counts_bruck_rounds(self):
        eng = SimEngine(8, trace=True)

        def prog(comm):
            comm.allgather(np.ones(8, dtype=np.float32))

        eng.run(prog)
        sends = eng.tracer.messages("send")
        # Bruck on 8 ranks: 3 rounds, one send per rank per round.
        assert len(sends) == 24

    def test_trace_volume_of_ring_allreduce(self):
        eng = SimEngine(4, trace=True)
        n = 4000

        def prog(comm):
            comm.allreduce(np.ones(n, dtype=np.float32))

        eng.run(prog)
        per_rank = eng.tracer.by_rank("send")
        # Each rank ships 2 * (p-1)/p * n elements of 4 bytes.
        expected = 2 * (3 / 4) * n * 4
        for rank, sent in per_rank.items():
            assert sent == pytest.approx(expected, rel=0.01)

    def test_trace_disabled_by_default(self):
        eng = SimEngine(2)

        def prog(comm):
            comm.send(b"x", 1 - comm.rank)
            comm.recv(1 - comm.rank)

        eng.run(prog)
        assert eng.tracer.events == ()
