"""Randomized (hypothesis) end-to-end properties.

These sample grid shapes, placements, and network/batch sizes the
hand-written tests did not enumerate, holding the reproduction's three
central invariants: (1) every distributed trainer is sequentially
consistent with serial SGD; (2) collective results are independent of
the algorithm used; (3) the memoized/vectorized search engine returns
bit-identical results to the serial optimizer.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optimizer import best_strategy, evaluate_grids, optimal_placements
from repro.core.strategy import ProcessGrid
from repro.data.synthetic import synthetic_classification
from repro.dist.switching import distributed_switching_mlp_train
from repro.dist.train import MLPParams, distributed_mlp_train, serial_mlp_train
from repro.errors import StrategyError
from repro.machine.compute import ComputeModel
from repro.machine.params import MachineParams
from repro.nn.alexnet import alexnet
from repro.nn.zoo import lenet_like, mlp, resnet_like_stack
from repro.search import SearchEngine
from repro.search.cache import machine_key
from repro.simmpi.engine import SimEngine

X, Y = synthetic_classification(9, 40, 4, seed=100)


@st.composite
def grids(draw, max_p=6):
    pr = draw(st.integers(1, max_p))
    pc = draw(st.integers(1, max(1, max_p // pr)))
    return pr, pc


@given(
    grid=grids(),
    hidden=st.integers(3, 17),
    batch=st.integers(4, 20),
)
@settings(max_examples=15, deadline=None)
def test_random_grid_mlp_matches_serial(grid, hidden, batch):
    pr, pc = grid
    if pc > batch:
        return
    dims = [9, hidden, 4]
    params = MLPParams.init(dims, seed=hidden)
    kw = dict(batch=batch, steps=2, lr=0.1)
    sw, sl = serial_mlp_train(params, X, Y, **kw)
    dw, dl, _ = distributed_mlp_train(params, X, Y, pr=pr, pc=pc, **kw)
    np.testing.assert_allclose(dl, sl, rtol=1e-9, atol=1e-12)
    for got, expected in zip(dw, sw.weights):
        np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-10)


@given(
    placements=st.lists(st.sampled_from(["batch", "model"]), min_size=3, max_size=3),
    grid=grids(max_p=6),
)
@settings(max_examples=15, deadline=None)
def test_random_placements_switching_matches_serial(placements, grid):
    pr, pc = grid
    batch = 12
    if pc > batch or pr * pc > batch:
        return
    dims = [9, 11, 7, 4]
    params = MLPParams.init(dims, seed=3)
    kw = dict(batch=batch, steps=2, lr=0.1)
    sw, sl = serial_mlp_train(params, X, Y, **kw)
    dw, dl, _ = distributed_switching_mlp_train(
        params, X, Y, placements=placements, pr=pr, pc=pc, **kw
    )
    np.testing.assert_allclose(dl, sl, rtol=1e-9, atol=1e-12)
    for got, expected in zip(dw, sw.weights):
        np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-10)


@given(
    size=st.integers(2, 9),
    n=st.integers(1, 300),
    algorithm=st.sampled_from(["ring", "rd", "rabenseifner", "naive"]),
)
@settings(max_examples=20, deadline=None)
def test_allreduce_algorithms_agree_on_random_sizes(size, n, algorithm):
    rng = np.random.default_rng(n)
    data = rng.standard_normal((size, n))

    def prog(comm):
        return comm.allreduce(data[comm.rank].copy(), algorithm=algorithm)

    res = SimEngine(size).run(prog)
    expected = data.sum(axis=0)
    for value in res.values:
        np.testing.assert_allclose(value, expected, rtol=1e-10, atol=1e-12)


@given(
    size=st.integers(2, 9),
    per_rank=st.lists(st.integers(0, 17), min_size=9, max_size=9),
    algorithm=st.sampled_from(["bruck", "ring"]),
)
@settings(max_examples=20, deadline=None)
def test_allgather_variable_blocks_random(size, per_rank, algorithm):
    def prog(comm):
        block = np.full(per_rank[comm.rank], float(comm.rank))
        return comm.allgather(block, algorithm=algorithm)

    res = SimEngine(size).run(prog)
    expected = np.concatenate(
        [np.full(per_rank[r], float(r)) for r in range(size)]
    )
    for value in res.values:
        np.testing.assert_array_equal(np.asarray(value).ravel(), expected)


# -- search-engine bit-identity properties -----------------------------------

NETWORKS = {
    "alexnet": alexnet(),
    "lenet": lenet_like(),
    "resnet8": resnet_like_stack(input_size=56, blocks=4),
    "mlp": mlp([512, 384, 256, 10], name="rand-mlp"),
}
COMPUTE = ComputeModel.knl_alexnet()


def machines():
    """Random machine parameters (alpha seconds, beta seconds/byte)."""
    return st.builds(
        lambda alpha, inv_bw: MachineParams(
            alpha=alpha, beta_per_byte=1.0 / inv_bw, name="rand"
        ),
        alpha=st.floats(1e-7, 1e-4),
        inv_bw=st.floats(1e8, 1e12),
    )


def _grid_choices_equal(serial, engine):
    assert serial.strategy == engine.strategy
    assert serial.total_epoch == engine.total_epoch  # exact, not approx
    assert serial.comm_epoch == engine.comm_epoch
    assert (
        serial.point.iteration.comm.terms == engine.point.iteration.comm.terms
    )


@given(
    net=st.sampled_from(sorted(NETWORKS)),
    p=st.sampled_from([2, 4, 8, 24, 60, 64, 256]),
    batch=st.sampled_from([1, 7, 32, 100, 512, 2048]),
    machine=machines(),
    per_layer=st.booleans(),
    overlap=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_search_engine_best_strategy_bit_identical(
    net, p, batch, machine, per_layer, overlap
):
    """Cached+vectorized best_strategy == serial, bit for bit."""
    network = NETWORKS[net]
    engine = SearchEngine()
    kwargs = dict(per_layer=per_layer, overlap=overlap)
    try:
        serial = best_strategy(network, batch, p, machine, COMPUTE, **kwargs)
    except StrategyError:
        with pytest.raises(StrategyError):
            engine.best_strategy(network, batch, p, machine, COMPUTE, **kwargs)
        return
    cached = engine.best_strategy(network, batch, p, machine, COMPUTE, **kwargs)
    _grid_choices_equal(serial, cached)
    # A second (fully cache-hit) evaluation must not change the answer.
    again = engine.best_strategy(network, batch, p, machine, COMPUTE, **kwargs)
    _grid_choices_equal(serial, again)
    assert engine.cache_stats().hits > 0


@given(
    net=st.sampled_from(sorted(NETWORKS)),
    p=st.sampled_from([4, 8, 36, 64]),
    batch=st.sampled_from([16, 100, 512]),
    machine=machines(),
)
@settings(max_examples=20, deadline=None)
def test_search_engine_grid_tables_bit_identical(net, p, batch, machine):
    """Every grid's full SimulationPoint matches the serial evaluation."""
    network = NETWORKS[net]
    engine = SearchEngine()
    serial = evaluate_grids(network, batch, p, machine, COMPUTE)
    cached = engine.evaluate_grids(network, batch, p, machine, COMPUTE)
    assert len(serial) == len(cached)
    for a, b in zip(serial, cached):
        assert a.strategy == b.strategy
        assert a.total_epoch == b.total_epoch
        assert a.comm_epoch == b.comm_epoch
        assert a.iteration.comm.terms == b.iteration.comm.terms


@given(
    net=st.sampled_from(sorted(NETWORKS)),
    pr=st.sampled_from([1, 2, 4, 8]),
    pc=st.sampled_from([1, 3, 8, 16]),
    batch=st.sampled_from([16, 100, 512]),
    machine=machines(),
)
@settings(max_examples=20, deadline=None)
def test_search_engine_placements_bit_identical(net, pr, pc, batch, machine):
    network = NETWORKS[net]
    grid = ProcessGrid(pr, pc)
    if grid.pc > batch:
        return
    engine = SearchEngine()
    serial = optimal_placements(network, batch, grid, machine)
    cached = engine.optimal_placements(network, batch, grid, machine)
    assert serial == cached


@given(machine=machines(), factor=st.floats(1.001, 100.0))
@settings(max_examples=15, deadline=None)
def test_cache_invalidates_when_machine_changes(machine, factor):
    """A derated machine gets fresh kernels, never stale cached costs."""
    network = NETWORKS["alexnet"]
    engine = SearchEngine()
    derated = machine.derated(latency_factor=factor, bandwidth_factor=1.0 / factor)
    assert machine_key(machine) != machine_key(derated)
    first = engine.best_strategy(network, 512, 64, machine, COMPUTE)
    keys_before = set(engine.cache.term_keys())
    second = engine.best_strategy(network, 512, 64, derated, COMPUTE)
    # Every key carries the machine fields: no entry was reused.
    new_keys = set(engine.cache.term_keys()) - keys_before
    assert new_keys and all(k[-1] == machine_key(derated) for k in new_keys)
    # And the answers still match the serial path for both machines.
    _grid_choices_equal(best_strategy(network, 512, 64, machine, COMPUTE), first)
    _grid_choices_equal(best_strategy(network, 512, 64, derated, COMPUTE), second)


def test_stress_many_ranks_collectives():
    """32 simulated ranks exercising every collective in one program."""
    size = 32

    def prog(comm):
        x = np.full(50, float(comm.rank))
        total = comm.allreduce(x, algorithm="rabenseifner")
        assert total[0] == pytest.approx(sum(range(size)))
        gathered = comm.allgather(np.array([comm.rank], dtype=float))
        assert gathered.shape == (size,)
        comm.barrier()
        value = comm.bcast("token" if comm.rank == 5 else None, root=5)
        assert value == "token"
        red = comm.reduce(np.ones(3), root=0)
        if comm.rank == 0:
            assert red[0] == size
        # 4x8 grid split and a sub-collective.
        row = comm.split(color=comm.rank // 8)
        assert row.size == 8
        s = row.allreduce(np.array([1.0]))
        assert s[0] == 8.0
        return comm.clock

    res = SimEngine(size).run(prog)
    assert res.time > 0
