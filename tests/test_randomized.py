"""Randomized (hypothesis) end-to-end properties.

These sample grid shapes, placements, and network/batch sizes the
hand-written tests did not enumerate, holding the reproduction's two
central invariants: (1) every distributed trainer is sequentially
consistent with serial SGD; (2) collective results are independent of
the algorithm used.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.synthetic import synthetic_classification
from repro.dist.switching import distributed_switching_mlp_train
from repro.dist.train import MLPParams, distributed_mlp_train, serial_mlp_train
from repro.simmpi.engine import SimEngine

X, Y = synthetic_classification(9, 40, 4, seed=100)


@st.composite
def grids(draw, max_p=6):
    pr = draw(st.integers(1, max_p))
    pc = draw(st.integers(1, max(1, max_p // pr)))
    return pr, pc


@given(
    grid=grids(),
    hidden=st.integers(3, 17),
    batch=st.integers(4, 20),
)
@settings(max_examples=15, deadline=None)
def test_random_grid_mlp_matches_serial(grid, hidden, batch):
    pr, pc = grid
    if pc > batch:
        return
    dims = [9, hidden, 4]
    params = MLPParams.init(dims, seed=hidden)
    kw = dict(batch=batch, steps=2, lr=0.1)
    sw, sl = serial_mlp_train(params, X, Y, **kw)
    dw, dl, _ = distributed_mlp_train(params, X, Y, pr=pr, pc=pc, **kw)
    np.testing.assert_allclose(dl, sl, rtol=1e-9, atol=1e-12)
    for got, expected in zip(dw, sw.weights):
        np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-10)


@given(
    placements=st.lists(st.sampled_from(["batch", "model"]), min_size=3, max_size=3),
    grid=grids(max_p=6),
)
@settings(max_examples=15, deadline=None)
def test_random_placements_switching_matches_serial(placements, grid):
    pr, pc = grid
    batch = 12
    if pc > batch or pr * pc > batch:
        return
    dims = [9, 11, 7, 4]
    params = MLPParams.init(dims, seed=3)
    kw = dict(batch=batch, steps=2, lr=0.1)
    sw, sl = serial_mlp_train(params, X, Y, **kw)
    dw, dl, _ = distributed_switching_mlp_train(
        params, X, Y, placements=placements, pr=pr, pc=pc, **kw
    )
    np.testing.assert_allclose(dl, sl, rtol=1e-9, atol=1e-12)
    for got, expected in zip(dw, sw.weights):
        np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-10)


@given(
    size=st.integers(2, 9),
    n=st.integers(1, 300),
    algorithm=st.sampled_from(["ring", "rd", "rabenseifner", "naive"]),
)
@settings(max_examples=20, deadline=None)
def test_allreduce_algorithms_agree_on_random_sizes(size, n, algorithm):
    rng = np.random.default_rng(n)
    data = rng.standard_normal((size, n))

    def prog(comm):
        return comm.allreduce(data[comm.rank].copy(), algorithm=algorithm)

    res = SimEngine(size).run(prog)
    expected = data.sum(axis=0)
    for value in res.values:
        np.testing.assert_allclose(value, expected, rtol=1e-10, atol=1e-12)


@given(
    size=st.integers(2, 9),
    per_rank=st.lists(st.integers(0, 17), min_size=9, max_size=9),
    algorithm=st.sampled_from(["bruck", "ring"]),
)
@settings(max_examples=20, deadline=None)
def test_allgather_variable_blocks_random(size, per_rank, algorithm):
    def prog(comm):
        block = np.full(per_rank[comm.rank], float(comm.rank))
        return comm.allgather(block, algorithm=algorithm)

    res = SimEngine(size).run(prog)
    expected = np.concatenate(
        [np.full(per_rank[r], float(r)) for r in range(size)]
    )
    for value in res.values:
        np.testing.assert_array_equal(np.asarray(value).ravel(), expected)


def test_stress_many_ranks_collectives():
    """32 simulated ranks exercising every collective in one program."""
    size = 32

    def prog(comm):
        x = np.full(50, float(comm.rank))
        total = comm.allreduce(x, algorithm="rabenseifner")
        assert total[0] == pytest.approx(sum(range(size)))
        gathered = comm.allgather(np.array([comm.rank], dtype=float))
        assert gathered.shape == (size,)
        comm.barrier()
        value = comm.bcast("token" if comm.rank == 5 else None, root=5)
        assert value == "token"
        red = comm.reduce(np.ones(3), root=0)
        if comm.rank == 0:
            assert red[0] == size
        # 4x8 grid split and a sub-collective.
        row = comm.split(color=comm.rank // 8)
        assert row.size == 8
        s = row.allreduce(np.array([1.0]))
        assert s[0] == 8.0
        return comm.clock

    res = SimEngine(size).run(prog)
    assert res.time > 0
