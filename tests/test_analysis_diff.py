"""Tests for RunRecord regression detection (repro diff)."""

import dataclasses

import numpy as np
import pytest

from repro.analysis import (
    DiffThresholds,
    Regression,
    diff_records,
)
from repro.dist.train import MLPParams, distributed_mlp_train, mlp_run_record
from repro.errors import ConfigurationError
from repro.machine.params import cori_knl
from repro.simmpi.engine import SimEngine

DIMS = (12, 9, 5)


def _record(machine=None, steps=2):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((DIMS[0], 32))
    y = rng.integers(0, DIMS[-1], 32)
    engine = SimEngine(4, machine, trace=True)
    _, _, sim = distributed_mlp_train(
        MLPParams.init(DIMS, seed=0), x, y,
        pr=2, pc=2, batch=8, steps=steps, engine=engine,
    )
    return mlp_run_record(
        engine, sim, dims=DIMS, pr=2, pc=2, batch=8, steps=steps
    )


BASELINE = _record()


class TestCleanDiff:
    def test_identical_runs_diff_clean(self):
        report = diff_records(BASELINE, _record())
        assert not report.regressed
        assert report.compared > 10
        assert "clean" in report.to_table().title

    def test_faster_run_never_regresses(self):
        slow = _record(machine=dataclasses.replace(
            cori_knl(), alpha=cori_knl().alpha * 4
        ))
        report = diff_records(slow, BASELINE)
        assert not report.regressed


class TestRegressions:
    def test_derated_machine_flags_spans(self):
        m = cori_knl()
        derated = dataclasses.replace(
            m, alpha=m.alpha * 4, beta_per_byte=m.beta_per_byte * 2
        )
        report = diff_records(BASELINE, _record(machine=derated))
        assert report.regressed
        kinds = {r.kind for r in report.regressions}
        assert "makespan" in kinds
        assert "span-time" in kinds
        assert "rank-wall" in kinds
        # Bytes and message counts are machine-independent: no such rows.
        assert "span-bytes" not in kinds
        assert "span-sends" not in kinds

    def test_huge_tolerance_silences_time_regressions(self):
        m = cori_knl()
        derated = dataclasses.replace(m, alpha=m.alpha * 1.5)
        thresholds = DiffThresholds(time_rel=10.0)
        report = diff_records(
            BASELINE, _record(machine=derated), thresholds=thresholds
        )
        assert not report.regressed

    def test_new_span_is_flagged(self):
        current = dataclasses.replace(
            BASELINE,
            spans=BASELINE.spans + (
                {"span": "surprise", "count": 1, "virtual_time_s": 1.0,
                 "sends": 1, "bytes": 8},
            ),
        )
        report = diff_records(BASELINE, current)
        assert any(
            r.kind == "span-new" and r.name == "surprise"
            for r in report.regressions
        )

    def test_byte_growth_with_zero_tolerance(self):
        spans = tuple(
            {**r, "bytes": r["bytes"] + 1} if r["span"] == "step" else r
            for r in BASELINE.spans
        )
        report = diff_records(BASELINE, dataclasses.replace(BASELINE, spans=spans))
        assert any(r.kind == "span-bytes" for r in report.regressions)


class TestUsageErrors:
    def test_incomparable_configs_raise(self):
        with pytest.raises(ConfigurationError, match="not comparable"):
            diff_records(BASELINE, _record(steps=3))

    def test_dropped_baseline_rejected(self):
        lossy = dataclasses.replace(BASELINE, dropped=5)
        with pytest.raises(ConfigurationError, match="dropped"):
            diff_records(lossy, BASELINE)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            DiffThresholds(time_rel=-0.1)


class TestRegressionRendering:
    def test_str_and_rel_change(self):
        r = Regression("span-time", "step", 1.0, 1.5)
        assert r.rel_change == pytest.approx(0.5)
        assert "step" in str(r) and "+50.0%" in str(r)

    def test_growth_from_zero_is_infinite(self):
        assert Regression("span-bytes", "s", 0.0, 8.0).rel_change == float("inf")
