"""Tests for the streaming health monitor and its deterministic replay."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dist.train import MLPParams, distributed_mlp_train
from repro.errors import ConfigurationError
from repro.observe.health import (
    HEALTH_KINDS,
    HealthConfig,
    HealthEvent,
    HealthMonitor,
    HealthReport,
    evaluate_health,
    virtual_order,
)
from repro.simmpi.engine import SimEngine
from repro.simmpi.tracing import TraceEvent


def hb(rank, step, t, loss=None, phase="train"):
    """A synthetic heartbeat event, tagged exactly like the emitter's."""
    attrs = {"step": step, "phase": phase}
    if loss is not None:
        attrs["loss"] = loss
    return TraceEvent(
        rank=rank, op="hb", peer=-1, nbytes=0, t_start=t, t_end=t,
        tag=tuple(sorted(attrs.items())),
    )


def feed(events, config=None):
    monitor = HealthMonitor(config)
    for ev in events:
        monitor.observe_event(ev)
    return monitor.finish()


class TestConfig:
    def test_defaults_validate(self):
        HealthConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stall_steps": 0},
            {"straggler_factor": 1.0},
            {"divergence_factor": 0.5},
            {"comm_wait_max": 0.0},
            {"comm_wait_max": 1.5},
            {"warmup_steps": -1},
        ],
    )
    def test_bad_thresholds_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            HealthConfig(**kwargs).validate()


class TestStall:
    def test_lagging_rank_flagged(self):
        events = [hb(0, s, 1e-6 * (s + 1)) for s in range(4)]
        events.append(hb(1, 0, 1e-6))  # rank 1 never gets past step 0
        report = feed(events)
        kinds = {(e.kind, e.rank) for e in report.events}
        assert ("stall", 1) in kinds
        assert all(e.severity == "crit" for e in report.events
                   if e.kind == "stall")

    def test_in_step_lag_below_threshold_is_healthy(self):
        events = []
        for s in range(4):
            events.append(hb(0, s, 1e-6 * (s + 1)))
            events.append(hb(1, s, 1e-6 * (s + 1)))
        assert feed(events).events == ()

    def test_finish_sweeps_quiet_ranks(self):
        # Rank 1 reports only step 0 and rank 0 races ahead — even if no
        # later heartbeat triggers the in-stream check, finish() must.
        events = [hb(1, 0, 1e-6), hb(0, 0, 1e-6), hb(0, 5, 2e-6)]
        report = feed(events)
        assert report.counts.get("stall") == 1


class TestStraggler:
    def test_slow_rank_flagged_per_step_duration(self):
        events = []
        for s in range(4):
            base = 1e-5 * s
            for r in range(4):
                dur = 3e-5 if r == 2 else 1e-5  # rank 2 is 3x slower
                events.append(hb(r, s, base + dur * (s + 1)))
        report = feed(events)
        stragglers = [e for e in report.events if e.kind == "straggler"]
        assert stragglers and all(e.rank == 2 for e in stragglers)
        assert all(e.severity == "warn" for e in stragglers)

    def test_warmup_steps_exempt(self):
        events = []
        for s in range(2):  # only warmup steps happen
            for r in range(3):
                dur = 9e-5 if r == 0 else 1e-5
                events.append(hb(r, s, 1e-4 * s + dur))
        assert feed(events).counts.get("straggler") is None

    def test_first_heartbeat_of_step_wins(self):
        # A compute-phase heartbeat then an end-of-step one: the judged
        # duration must be the compute phase's, not the remainder's.
        events = []
        for r in range(3):
            events.append(hb(r, 0, 1e-5, phase="compute"))
        for s in (1, 2, 3):
            t0 = 1e-4 * s
            for r in range(3):
                compute = 5e-5 if r == 1 else 1e-5
                events.append(hb(r, s, t0 + compute, phase="compute"))
                # end-of-step: everyone syncs to the same instant
                events.append(hb(r, s, t0 + 9e-5))
        report = feed(events)
        stragglers = [e for e in report.events if e.kind == "straggler"]
        assert stragglers and all(e.rank == 1 for e in stragglers)


class TestLossRules:
    def test_nan_loss_is_critical(self):
        events = [hb(0, 0, 1e-6, loss=1.0), hb(0, 1, 2e-6, loss=float("nan"))]
        report = feed(events)
        assert report.counts.get("loss_nan") == 1
        assert report.worst == "crit"

    def test_divergence_after_warmup(self):
        losses = [2.0, 1.5, 1.0, 0.9, 5.0]  # 5.0 > 2x best (0.9)
        events = [hb(0, s, 1e-6 * (s + 1), loss=v)
                  for s, v in enumerate(losses)]
        report = feed(events)
        div = [e for e in report.events if e.kind == "loss_divergence"]
        assert len(div) == 1 and div[0].step == 4

    def test_noisy_warmup_tolerated(self):
        losses = [9.0, 0.5, 0.6, 0.55]  # big warmup loss never judged
        events = [hb(0, s, 1e-6 * (s + 1), loss=v)
                  for s, v in enumerate(losses)]
        assert feed(events).events == ()


class TestCommWait:
    def _recv(self, rank, t0, t1):
        return TraceEvent(rank=rank, op="recv", peer=0, nbytes=8,
                          t_start=t0, t_end=t1)

    def test_recv_dominated_step_flagged(self):
        events = [hb(0, 2, 1e-5), self._recv(0, 1.02e-5, 1.98e-5),
                  hb(0, 3, 2e-5)]
        report = feed(events)
        assert report.counts.get("comm_wait_spike") == 1

    def test_modest_wait_is_healthy(self):
        events = [hb(0, 2, 1e-5), self._recv(0, 1.2e-5, 1.5e-5),
                  hb(0, 3, 2e-5)]
        assert feed(events).events == ()


class TestCkptAndEpochs:
    def _mark(self, op, rank=0, t=1e-6):
        return TraceEvent(rank=rank, op=op, peer=-1, nbytes=0,
                          t_start=t, t_end=t)

    def test_degraded_restore_is_critical(self):
        report = feed([self._mark("ckpt.degraded")])
        assert report.counts == {"ckpt_degraded": 1}
        assert report.worst == "crit"

    def test_crash_resets_progress_epoch(self):
        # Pre-crash rank 1 lags badly; the crash renumbers the world, so
        # no stall may be raised from stale pre-crash identities.
        events = [hb(0, 0, 1e-6), hb(1, 0, 1e-6), hb(0, 4, 2e-6),
                  self._mark("fault.crash", rank=1, t=3e-6)]
        events += [hb(r, 5, 4e-6) for r in range(2)]
        report = feed(events)
        assert report.counts.get("stall") == 1  # pre-crash stall only
        # Same kind can fire again in the new epoch (dedupe is per epoch).
        events += [hb(0, 9, 5e-6)]
        report2 = feed(events)
        assert report2.counts.get("stall") == 2

    def test_dedupe_within_epoch(self):
        events = [hb(0, 0, 1e-6), hb(1, 0, 1e-6)]
        events += [hb(0, s, 1e-6 * (s + 2)) for s in range(1, 6)]
        report = feed(events)
        assert report.counts.get("stall") == 1


class TestEventAndReport:
    def test_event_round_trip(self):
        ev = HealthEvent("stall", 3, 1.5e-6, "crit", "lagging", step=2)
        assert HealthEvent.from_dict(ev.to_dict()) == ev

    def test_step_omitted_when_none(self):
        ev = HealthEvent("ckpt_degraded", 0, 1e-6, "crit", "d")
        assert "step" not in ev.to_dict()

    def test_report_round_trip_and_worst(self):
        events = (
            HealthEvent("straggler", 1, 1e-6, "warn", "slow", step=3),
            HealthEvent("loss_nan", 0, 2e-6, "crit", "nan", step=4),
        )
        report = HealthReport(events)
        again = HealthReport.from_dict(report.to_dict())
        assert again.events == events
        assert report.worst == "crit"
        assert report.counts == {"straggler": 1, "loss_nan": 1}

    def test_kinds_have_severities(self):
        assert set(HEALTH_KINDS.values()) <= {"warn", "crit"}

    def test_to_table_has_all_rows(self):
        report = HealthReport(
            (HealthEvent("stall", 0, 1e-6, "crit", "x", step=1),)
        )
        assert len(report.to_table()) == 1


class TestDeterministicReplay:
    def test_virtual_order_is_scheduling_independent(self):
        events = [hb(r, s, 1e-6 * (s + 1) + 1e-9 * r)
                  for s in range(3) for r in range(4)]
        rng = np.random.default_rng(7)
        for _ in range(5):
            shuffled = list(events)
            rng.shuffle(shuffled)
            assert virtual_order(shuffled) == virtual_order(events)

    def test_evaluate_health_stable_under_shuffle(self):
        events = [hb(0, s, 1e-6 * (s + 1)) for s in range(5)]
        events.append(hb(1, 0, 1e-6))
        base = evaluate_health(events).to_dict()
        rng = np.random.default_rng(3)
        shuffled = list(events)
        rng.shuffle(shuffled)
        assert evaluate_health(shuffled).to_dict() == base


class TestBitIdentity:
    """The headline invariant: observation never changes the run."""

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        steps=st.integers(min_value=1, max_value=3),
    )
    def test_monitor_on_equals_monitor_off(self, seed, steps):
        dims = (8, 6, 4)
        batch = 4
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((dims[0], 2 * batch))
        y = rng.integers(0, dims[-1], 2 * batch)
        params0 = MLPParams.init(dims, seed=seed)

        def one(monitor):
            engine = SimEngine(4, None, trace=True, metrics=monitor)
            weights, losses, sim = distributed_mlp_train(
                params0, x, y, pr=2, pc=2, batch=batch, steps=steps,
                engine=engine,
            )
            return weights, losses, sim.time

        bare_w, bare_l, bare_t = one(None)
        monitor = HealthMonitor()
        mon_w, mon_l, mon_t = one(monitor)
        monitor.finish()
        assert mon_t == bare_t
        assert mon_l == bare_l
        assert all(
            a.tobytes() == b.tobytes() for a, b in zip(mon_w, bare_w)
        )
        assert monitor.heartbeats_seen == 4 * steps

    def test_monitored_trace_replays_identically(self):
        dims = (8, 6, 4)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((dims[0], 8))
        y = rng.integers(0, dims[-1], 8)
        params0 = MLPParams.init(dims, seed=0)
        monitor = HealthMonitor()
        engine = SimEngine(4, None, trace=True, metrics=monitor)
        distributed_mlp_train(
            params0, x, y, pr=2, pc=2, batch=4, steps=2, engine=engine
        )
        monitor.finish()
        # Deterministic replay of the stored trace raises the same set.
        replay = evaluate_health(engine.tracer.canonical())
        assert {e.to_dict()["kind"] for e in replay.events} == {
            e.to_dict()["kind"] for e in monitor.events
        }

    def test_heartbeats_are_zero_duration(self):
        dims = (8, 6, 4)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((dims[0], 8))
        y = rng.integers(0, dims[-1], 8)
        params0 = MLPParams.init(dims, seed=0)
        engine = SimEngine(4, None, trace=True)
        distributed_mlp_train(
            params0, x, y, pr=2, pc=2, batch=4, steps=2, engine=engine
        )
        hbs = [e for e in engine.tracer.canonical() if e.op == "hb"]
        assert hbs
        assert all(e.t_start == e.t_end and e.nbytes == 0 for e in hbs)
        fields = dict(hbs[0].tag)
        assert fields["phase"] == "train"
        assert math.isfinite(fields["loss"])
