"""Tests for telemetry spans: nesting, event annotation, zero-overhead."""

import threading

import numpy as np

from repro.dist.train import MLPParams, distributed_mlp_train
from repro.simmpi.engine import SimEngine
from repro.telemetry.spans import (
    base_name,
    current_path,
    format_label,
    parse_label,
    span,
)


class TestLabels:
    def test_plain_name(self):
        assert format_label("fwd", {}) == "fwd"
        assert parse_label("fwd") == ("fwd", {})
        assert base_name("fwd") == "fwd"

    def test_attrs_sorted_and_parsed(self):
        label = format_label("fwd", {"layer": 3, "alg": "bruck"})
        assert label == "fwd[alg=bruck,layer=3]"
        name, attrs = parse_label(label)
        assert name == "fwd"
        assert attrs == {"alg": "bruck", "layer": 3}
        assert isinstance(attrs["layer"], int)
        assert base_name(label) == "fwd"

    def test_float_values_roundtrip(self):
        _, attrs = parse_label(format_label("s", {"f": 0.5}))
        assert attrs == {"f": 0.5}


class TestNesting:
    def test_path_tracks_nesting(self):
        assert current_path() == ()
        with span("a", x=1):
            assert current_path() == ("a[x=1]",)
            with span("b"):
                assert current_path() == ("a[x=1]", "b")
            assert current_path() == ("a[x=1]",)
        assert current_path() == ()

    def test_exception_unwinds_stack(self):
        try:
            with span("outer"):
                with span("inner"):
                    raise ValueError("boom")
        except ValueError:
            pass
        assert current_path() == ()

    def test_threads_are_isolated(self):
        seen = {}

        def worker():
            with span("worker"):
                seen["path"] = current_path()

        with span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert current_path() == ("main",)
        assert seen["path"] == ("worker",)


def _annotated_program(comm):
    with span("phase", comm=comm, step=0):
        return comm.allreduce(np.ones(4), algorithm="ring")


class TestEngineIntegration:
    def test_events_carry_span_path(self):
        eng = SimEngine(2, trace=True)
        eng.run(_annotated_program)
        sends = eng.tracer.messages("send")
        assert sends, "ring allreduce must send"
        for e in sends:
            assert e.span[0] == "phase[step=0]"
            assert base_name(e.span[-1]) == "allreduce"

    def test_span_bracket_events_recorded(self):
        eng = SimEngine(2, trace=True)
        eng.run(_annotated_program)
        brackets = [e for e in eng.tracer.events if e.op == "span"]
        phase = [e for e in brackets if e.span == ("phase[step=0]",)]
        # One closing bracket per rank; virtual time moved inside.
        assert sorted(e.rank for e in phase) == [0, 1]
        for e in phase:
            assert e.t_end >= e.t_start >= 0.0
            assert e.tag == (("step", 0),)
        # Collectives bracket themselves too (nested under the phase).
        assert any(base_name(e.span[-1]) == "allreduce" for e in brackets)

    def test_disabled_tracer_records_nothing(self):
        eng = SimEngine(2)
        eng.run(_annotated_program)
        assert eng.tracer.events == ()

    def test_tracing_leaves_virtual_time_bit_identical(self):
        dims = (12, 8, 6)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((dims[0], 32))
        y = rng.integers(0, dims[-1], 32)
        params0 = MLPParams.init(dims, seed=0)
        runs = [
            distributed_mlp_train(
                params0, x, y, pr=2, pc=2, batch=8, steps=3, trace=traced
            )
            for traced in (False, True)
        ]
        (w_off, losses_off, sim_off), (w_on, losses_on, sim_on) = runs
        assert losses_off == losses_on
        assert sim_off.clocks == sim_on.clocks  # exact, not approximate
        for a, b in zip(w_off, w_on):
            assert np.array_equal(a, b)

    def test_analysis_is_observability_only(self):
        """Running the full analysis stack never perturbs the run.

        A traced run analysed with accounting + critical path + record
        building must keep bit-identical weights, losses and virtual
        clocks to an untraced run of the same program — the trace is a
        read-only view, and the analysis a pure consumer of it.
        """
        from repro.analysis import critical_path, rank_accounting
        from repro.dist.train import mlp_run_record
        from repro.simmpi.engine import SimEngine

        dims = (12, 8, 6)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((dims[0], 32))
        y = rng.integers(0, dims[-1], 32)
        params0 = MLPParams.init(dims, seed=0)
        kw = dict(pr=2, pc=2, batch=8, steps=3)
        w_off, losses_off, sim_off = distributed_mlp_train(
            params0, x, y, **kw
        )
        engine = SimEngine(4, trace=True)
        w_on, losses_on, sim_on = distributed_mlp_train(
            params0, x, y, engine=engine, **kw
        )
        events = engine.tracer.canonical()
        rank_accounting(events, clocks=sim_on.clocks)
        critical_path(events, clocks=sim_on.clocks)
        record = mlp_run_record(engine, sim_on, dims=dims, **kw)
        assert losses_off == losses_on
        assert sim_off.clocks == sim_on.clocks
        for a, b in zip(w_off, w_on):
            assert np.array_equal(a, b)
        # The analyses left the trace untouched and agree with the run.
        assert engine.tracer.canonical() == events
        assert record.makespan_s == max(sim_off.clocks)
