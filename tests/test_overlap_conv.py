"""Tests for the timed/overlapped domain-parallel convolution: numerics
unchanged, virtual time shows the paper's overlap benefit."""

import numpy as np
import pytest

from repro.dist.conv_domain import DomainConv2D
from repro.dist.layers import conv2d_forward
from repro.dist.partition import BlockPartition
from repro.errors import RankFailedError
from repro.machine.params import MachineParams
from repro.simmpi.engine import SimEngine

RNG = np.random.default_rng(5)
# A bandwidth-dominated slow network: message flight times are large
# relative to the per-send injection overhead (alpha), which is the
# regime where overlapping helps — exactly the paper's halo argument.
SLOW = MachineParams(alpha=0.01, beta_per_byte=0.01)


def run_timed(pd, x, w, k, compute_seconds, overlap):
    h = x.shape[2]
    part = BlockPartition(h, pd)

    def prog(comm):
        op = DomainConv2D(comm, h, k, k)
        x_local = part.take(x, comm.rank, axis=2)
        y = op.forward_timed(x_local, w, compute_seconds, overlap=overlap)
        return y, comm.clock

    res = SimEngine(pd, SLOW).run(prog)
    y = np.concatenate([v[0] for v in res.values], axis=2)
    return y, res.time


class TestNumerics:
    @pytest.mark.parametrize("overlap", [True, False])
    @pytest.mark.parametrize("pd", [1, 2, 4])
    def test_timed_forward_matches_serial(self, overlap, pd):
        x = RNG.standard_normal((2, 3, 12, 6))
        w = RNG.standard_normal((4, 3, 3, 3))
        y, _ = run_timed(pd, x, w, 3, compute_seconds=0.1, overlap=overlap)
        np.testing.assert_allclose(y, conv2d_forward(x, w, 1, 1), rtol=1e-12)

    def test_backward_works_after_timed_forward(self):
        x = RNG.standard_normal((1, 2, 8, 4))
        w = RNG.standard_normal((3, 2, 3, 3))
        dy = RNG.standard_normal((1, 3, 8, 4))
        part = BlockPartition(8, 2)

        def prog(comm):
            op = DomainConv2D(comm, 8, 3, 3)
            op.forward_timed(part.take(x, comm.rank, axis=2), w, 0.01)
            return op.backward(part.take(dy, comm.rank, axis=2), w)

        res = SimEngine(2, SLOW).run(prog)
        from repro.dist.layers import conv2d_backward

        exp_dx, exp_dw = conv2d_backward(x, w, dy, 1, 1)
        dx = np.concatenate([v[0] for v in res.values], axis=2)
        dw = sum(v[1] for v in res.values)
        np.testing.assert_allclose(dx, exp_dx, rtol=1e-10)
        np.testing.assert_allclose(dw, exp_dw, rtol=1e-10)


class TestOverlapTiming:
    def test_overlap_hides_halo_flight(self):
        """With enough interior compute, the overlapped forward hides
        most of the halo flight, while the blocking order pays
        flight + compute in full."""
        x = RNG.standard_normal((1, 2, 12, 4))
        w = RNG.standard_normal((2, 2, 3, 3))
        # Halo message: 1 row x 4 wide x 2 ch x 8 bytes = 64 B -> 0.65s
        # flight at beta=0.01 s/B; compute 2s with interior fraction 1/3.
        compute = 2.0
        _, t_overlap = run_timed(4, x, w, 3, compute, overlap=True)
        _, t_block = run_timed(4, x, w, 3, compute, overlap=False)
        flight = 0.01 + 0.01 * 64
        assert t_block >= compute + flight * 0.9
        assert t_overlap < t_block
        # The interior third of the compute runs under the flight.
        assert t_overlap <= t_block - min(flight, compute / 3) * 0.9

    def test_single_rank_just_computes(self):
        x = RNG.standard_normal((1, 1, 6, 4))
        w = RNG.standard_normal((1, 1, 3, 3))
        _, t = run_timed(1, x, w, 3, 1.5, overlap=True)
        assert t == pytest.approx(1.5)

    def test_negative_compute_rejected(self):
        x = RNG.standard_normal((1, 1, 6, 4))
        w = RNG.standard_normal((1, 1, 3, 3))

        def prog(comm):
            op = DomainConv2D(comm, 6, 3, 3)
            op.forward_timed(x, w, -1.0)

        with pytest.raises(RankFailedError):
            SimEngine(1, SLOW).run(prog)
