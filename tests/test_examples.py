"""Smoke tests: every example script runs to completion and prints its
headline output.  Examples are part of the public API surface — if they
break, adoption breaks."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXPECTED_SNIPPETS = {
    "quickstart.py": "Best strategy:",
    "distributed_mlp_training.py": "sequential consistency",
    "domain_parallel_cnn.py": "floor(3/2) = 1 boundary row",
    "strategy_explorer.py": "crossover batch",
    "scaling_beyond_batch.py": "pure batch parallelism cannot pass",
    "grid_switching.py": "reproduces serial SGD exactly",
    "summa_vs_15d.py": "1.5D never moves more than SUMMA",
    "trace_timeline.py": "only adjacent row owners exchange boundaries",
    "telemetry_trace.py": "zero relative error on every bandwidth term",
}


def run_example(name: str, *args: str) -> str:
    path = os.path.join(EXAMPLES_DIR, name)
    proc = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


@pytest.mark.parametrize("name,snippet", sorted(EXPECTED_SNIPPETS.items()))
def test_example_runs_and_prints_headline(name, snippet):
    out = run_example(name)
    assert snippet in out


def test_reproduce_paper_writes_reports(tmp_path):
    out = run_example("reproduce_paper.py", str(tmp_path))
    assert "reports written to" in out
    files = os.listdir(tmp_path)
    # One report per registered experiment, plus csv/json exports.
    for experiment_id in ("table1", "fig6", "fig10", "eq5", "pareto"):
        assert f"{experiment_id}.txt" in files
        assert f"{experiment_id}.csv" in files
