"""Tests for the 1.5D distributed layer products (repro.dist.matmul15d):
every product must equal its NumPy counterpart on every grid shape."""

import numpy as np
import pytest

from repro.dist.grid import GridComm
from repro.dist.matmul15d import backward_dw_15d, backward_dx_15d, forward_15d
from repro.dist.partition import BlockPartition
from repro.errors import RankFailedError
from repro.simmpi.engine import SimEngine

RNG = np.random.default_rng(17)

GRIDS = [(1, 1), (1, 4), (4, 1), (2, 2), (2, 3), (3, 2), (4, 2)]


def run_grid(pr, pc, prog):
    return SimEngine(pr * pc).run(prog)


class TestGridComm:
    def test_coords_row_major(self):
        def prog(comm):
            g = GridComm(comm, 2, 3)
            return g.coords

        res = run_grid(2, 3, prog)
        assert list(res.values) == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_subcomm_sizes(self):
        def prog(comm):
            g = GridComm(comm, 2, 3)
            return g.col_comm.size, g.row_comm.size

        for value in run_grid(2, 3, prog).values:
            assert value == (2, 3)

    def test_col_comm_ordered_by_row(self):
        def prog(comm):
            g = GridComm(comm, 3, 2)
            return g.col_comm.rank == g.row, g.row_comm.rank == g.col

        for value in run_grid(3, 2, prog).values:
            assert value == (True, True)

    def test_size_mismatch(self):
        def prog(comm):
            GridComm(comm, 2, 2)

        with pytest.raises(RankFailedError):
            SimEngine(6).run(prog)


@pytest.mark.parametrize("pr,pc", GRIDS)
class TestProducts:
    d_out, d_in, batch = 10, 7, 12

    def _setup(self, comm, pr, pc):
        grid = GridComm(comm, pr, pc)
        w = RNG.standard_normal((self.d_out, self.d_in))  # same on all ranks (seeded)
        x = RNG.standard_normal((self.d_in, self.batch))
        dy = RNG.standard_normal((self.d_out, self.batch))
        return grid, w, x, dy

    def test_forward(self, pr, pc):
        d_out, d_in, batch = self.d_out, self.d_in, self.batch
        w = RNG.standard_normal((d_out, d_in))
        x = RNG.standard_normal((d_in, batch))
        rows = BlockPartition(d_out, pr)
        cols = BlockPartition(batch, pc)

        def prog(comm):
            grid = GridComm(comm, pr, pc)
            w_local = rows.take(w, grid.row, axis=0)
            x_local = cols.take(x, grid.col, axis=1)
            return forward_15d(grid, w_local, x_local)

        res = run_grid(pr, pc, prog)
        expected = w @ x
        for rank, y_local in enumerate(res.values):
            c = rank % pc
            np.testing.assert_allclose(y_local, cols.take(expected, c, axis=1), rtol=1e-12)

    def test_backward_dx(self, pr, pc):
        d_out, d_in, batch = self.d_out, self.d_in, self.batch
        w = RNG.standard_normal((d_out, d_in))
        dy = RNG.standard_normal((d_out, batch))
        rows = BlockPartition(d_out, pr)
        cols = BlockPartition(batch, pc)

        def prog(comm):
            grid = GridComm(comm, pr, pc)
            w_local = rows.take(w, grid.row, axis=0)
            dy_local = cols.take(rows.take(dy, grid.row, axis=0), grid.col, axis=1)
            return backward_dx_15d(grid, w_local, dy_local)

        res = run_grid(pr, pc, prog)
        expected = w.T @ dy
        for rank, dx_local in enumerate(res.values):
            c = rank % pc
            np.testing.assert_allclose(dx_local, cols.take(expected, c, axis=1), rtol=1e-10)

    def test_backward_dw(self, pr, pc):
        d_out, d_in, batch = self.d_out, self.d_in, self.batch
        x = RNG.standard_normal((d_in, batch))
        dy = RNG.standard_normal((d_out, batch))
        rows = BlockPartition(d_out, pr)
        cols = BlockPartition(batch, pc)

        def prog(comm):
            grid = GridComm(comm, pr, pc)
            dy_local = cols.take(rows.take(dy, grid.row, axis=0), grid.col, axis=1)
            x_local = cols.take(x, grid.col, axis=1)
            return backward_dw_15d(grid, dy_local, x_local)

        res = run_grid(pr, pc, prog)
        expected = dy @ x.T
        for rank, dw_local in enumerate(res.values):
            r = rank // pc
            np.testing.assert_allclose(dw_local, rows.take(expected, r, axis=0), rtol=1e-10)


class TestShapeValidation:
    def test_forward_conformance(self):
        def prog(comm):
            grid = GridComm(comm, 1, 1)
            forward_15d(grid, np.zeros((3, 4)), np.zeros((5, 2)))

        with pytest.raises(RankFailedError):
            SimEngine(1).run(prog)

    def test_dx_conformance(self):
        def prog(comm):
            grid = GridComm(comm, 1, 1)
            backward_dx_15d(grid, np.zeros((3, 4)), np.zeros((5, 2)))

        with pytest.raises(RankFailedError):
            SimEngine(1).run(prog)

    def test_dw_conformance(self):
        def prog(comm):
            grid = GridComm(comm, 1, 1)
            backward_dw_15d(grid, np.zeros((3, 4)), np.zeros((5, 2)))

        with pytest.raises(RankFailedError):
            SimEngine(1).run(prog)
