"""Tests for the cost equations (repro.core.costs).

The literal paper formulas (Eqs. 3, 4, 7, 8) are re-implemented here,
independently of the library's term-based machinery, and the two must
agree exactly.
"""

import math

import pytest

from repro.core.costs import (
    batch_parallel_cost,
    domain_parallel_cost,
    integrated_cost,
    integrated_mb_cost,
    model_parallel_cost,
)
from repro.core.strategy import Placement, ProcessGrid, Strategy
from repro.errors import StrategyError
from repro.machine.params import cori_knl
from repro.nn import alexnet, lenet_like, mlp, resnet_like_stack

NET = alexnet()
M = cori_knl()


def lg(p):
    return math.ceil(math.log2(p)) if p > 1 else 0


def eq3_literal(net, B, P, m):
    """Eq. 3: pure model parallel."""
    layers = net.weighted_layers
    total = 0.0
    for w in layers:  # i = 1..L
        total += m.alpha * lg(P) + m.beta * B * (P - 1) / P * w.d_out
    for w in layers[1:]:  # i = 2..L
        total += 2 * (m.alpha * lg(P) + m.beta * B * (P - 1) / P * w.d_in)
    return total


def eq4_literal(net, P, m):
    """Eq. 4: pure batch parallel."""
    return sum(
        2 * (m.alpha * lg(P) + m.beta * (P - 1) / P * w.weights)
        for w in net.weighted_layers
    )


def eq7_literal(net, B, P, m):
    """Eq. 7: pure domain parallel (halos only where convolutions are;
    1x1 convolutions communicate nothing)."""
    total = 0.0
    for w in net.weighted_layers:
        if w.is_conv:
            fwd = B * w.in_shape.width * w.in_shape.channels * (w.kernel_h // 2)
            if fwd > 0:
                total += m.alpha + m.beta * fwd
            bwd = B * w.out_shape.width * w.out_shape.channels * (w.kernel_w // 2)
            if bwd > 0:
                total += m.alpha + m.beta * bwd
        total += 2 * (m.alpha * lg(P) + m.beta * (P - 1) / P * w.weights)
    return total


def eq8_literal(net, B, pr, pc, m):
    """Eq. 8: integrated model + batch (1.5D)."""
    layers = net.weighted_layers
    total = 0.0
    for w in layers:
        total += m.alpha * lg(pr) + m.beta * (B / pc) * (pr - 1) / pr * w.d_out
    for w in layers[1:]:
        total += 2 * (m.alpha * lg(pr) + m.beta * (B / pc) * (pr - 1) / pr * w.d_in)
    for w in layers:
        total += 2 * (m.alpha * lg(pc) + m.beta * (pc - 1) / pc * w.weights / pr)
    return total


class TestLiteralFormulas:
    @pytest.mark.parametrize("net", [NET, lenet_like(), mlp([64, 32, 10])])
    @pytest.mark.parametrize("p", [2, 7, 8, 64])
    def test_eq3(self, net, p):
        got = model_parallel_cost(net, 256, p, M).total
        assert got == pytest.approx(eq3_literal(net, 256, p, M), rel=1e-12)

    @pytest.mark.parametrize("net", [NET, lenet_like()])
    @pytest.mark.parametrize("p", [2, 16, 512])
    def test_eq4(self, net, p):
        got = batch_parallel_cost(net, p, M, batch=2048).total
        assert got == pytest.approx(eq4_literal(net, p, M), rel=1e-12)

    @pytest.mark.parametrize("net", [NET, lenet_like(), resnet_like_stack(blocks=2)])
    @pytest.mark.parametrize("p", [2, 4, 32])
    def test_eq7(self, net, p):
        got = domain_parallel_cost(net, 128, p, M).total
        assert got == pytest.approx(eq7_literal(net, 128, p, M), rel=1e-12)

    @pytest.mark.parametrize("grid", [(2, 4), (4, 2), (16, 32), (3, 5)])
    def test_eq8(self, grid):
        pr, pc = grid
        got = integrated_mb_cost(NET, 2048, ProcessGrid(pr, pc), M).total
        assert got == pytest.approx(eq8_literal(NET, 2048, pr, pc, M), rel=1e-12)


class TestDegeneracies:
    """Eq. 8 must collapse to Eqs. 3/4; Eq. 9 to Eq. 8 when LD is empty."""

    @pytest.mark.parametrize("p", [2, 8, 100, 512])
    def test_eq8_pr1_is_eq4(self, p):
        grid = ProcessGrid(1, p)
        got = integrated_mb_cost(NET, 2048, grid, M).total
        assert got == pytest.approx(eq4_literal(NET, p, M), rel=1e-12)

    @pytest.mark.parametrize("p", [2, 8, 100, 512])
    def test_eq8_pc1_is_eq3(self, p):
        grid = ProcessGrid(p, 1)
        got = integrated_mb_cost(NET, 2048, grid, M).total
        assert got == pytest.approx(eq3_literal(NET, 2048, p, M), rel=1e-12)

    def test_eq9_empty_ld_is_eq8(self):
        grid = ProcessGrid(8, 16)
        s = Strategy.same_grid_model(NET, grid)
        assert integrated_cost(NET, 2048, s, M).total == pytest.approx(
            integrated_mb_cost(NET, 2048, grid, M).total
        )


class TestStructure:
    def test_pure_batch_has_only_dw_terms(self):
        bd = batch_parallel_cost(NET, 64, M, batch=2048)
        assert bd.model_time == 0.0
        assert bd.domain_time == 0.0
        assert bd.batch_time == pytest.approx(bd.total)

    def test_pure_model_has_no_dw_terms(self):
        """Eq. 3 has no weight all-reduce: X is fully replicated."""
        md = model_parallel_cost(NET, 2048, 64, M)
        assert md.batch_time == 0.0
        assert md.model_time == pytest.approx(md.total)

    def test_batch_cost_independent_of_batch_size(self):
        a = batch_parallel_cost(NET, 64, M, batch=64).total
        b = batch_parallel_cost(NET, 64, M, batch=4096).total
        assert a == pytest.approx(b)

    def test_model_cost_scales_with_batch(self):
        a = model_parallel_cost(NET, 256, 16, M)
        b = model_parallel_cost(NET, 512, 16, M)
        assert b.bandwidth == pytest.approx(2 * a.bandwidth)

    def test_first_layer_has_no_dx_allreduce(self):
        md = model_parallel_cost(NET, 256, 8, M)
        first = [t for t in md.terms if t.layer == "conv1"]
        assert {t.category for t in first} == {"model.allgather_fwd"}

    def test_pointwise_conv_has_no_halo(self):
        """Eq. 7: 'for a 1x1 convolution no communication is needed'."""
        net = resnet_like_stack(blocks=1)
        dd = domain_parallel_cost(net, 64, 4, M)
        pointwise = {w.name for w in net.weighted_layers if w.is_pointwise}
        for t in dd.terms:
            if t.layer in pointwise:
                assert t.category == "batch.allreduce_dw"

    def test_domain_rejects_fc_layers(self):
        net = mlp([64, 32, 10])
        s = Strategy.uniform(net, ProcessGrid(4, 1), Placement.DOMAIN)
        with pytest.raises(StrategyError):
            integrated_cost(net, 64, s, M)

    def test_infeasible_batch_split_rejected(self):
        s = Strategy.same_grid_model(NET, ProcessGrid(1, 512))
        with pytest.raises(StrategyError):
            integrated_cost(NET, 256, s, M)

    def test_nonpositive_batch_rejected(self):
        s = Strategy.same_grid_model(NET, ProcessGrid(1, 1))
        with pytest.raises(StrategyError):
            integrated_cost(NET, 0, s, M)

    def test_batch_placement_uses_full_p(self):
        """Fig. 7: conv layers run over all P with full |W| volume."""
        grid = ProcessGrid(16, 32)
        s = Strategy.conv_batch_fc_model(NET, grid)
        bd = integrated_cost(NET, 2048, s, M)
        conv1 = [t for t in bd.terms if t.layer == "conv1"]
        assert len(conv1) == 1
        w1 = NET.weighted_layers[0].weights
        expected = 2 * (M.alpha * lg(512) + M.beta * (511 / 512) * w1)
        assert conv1[0].cost.total == pytest.approx(expected)

    def test_breakdown_aggregations_consistent(self):
        grid = ProcessGrid(8, 16)
        bd = integrated_mb_cost(NET, 2048, grid, M)
        assert bd.total == pytest.approx(bd.latency + bd.bandwidth)
        assert bd.total == pytest.approx(sum(bd.by_category().values()))
        assert bd.total == pytest.approx(sum(bd.by_layer().values()))
        assert bd.total == pytest.approx(bd.batch_time + bd.model_time + bd.domain_time)

    def test_filter_by_prefix(self):
        bd = integrated_mb_cost(NET, 2048, ProcessGrid(4, 8), M)
        assert bd.filter("model.").total == pytest.approx(bd.model_time)
        assert bd.filter("model.", "batch.").total == pytest.approx(bd.total)


class TestCheckpointCostTerms:
    """Closed-form checkpoint terms agree with the erasure codec geometry."""

    DIMS = (8, 10, 6)

    def test_chunk_bytes_matches_erasure_module(self):
        from repro.core.costs import checkpoint_chunk_bytes
        from repro.dist import erasure

        for pr in (1, 2, 3):
            for k in (1, 2, 3):
                for mom in (False, True):
                    assert checkpoint_chunk_bytes(
                        self.DIMS, pr=pr, k=k, momentum=mom
                    ) == erasure.chunk_bytes(self.DIMS, pr, k, mom)

    def test_state_bytes_matches_erasure_module(self):
        from repro.core.costs import checkpoint_state_bytes
        from repro.dist import erasure

        assert checkpoint_state_bytes(self.DIMS) == erasure.state_bytes(self.DIMS)
        assert checkpoint_state_bytes(
            self.DIMS, momentum=True
        ) == erasure.state_bytes(self.DIMS, True)

    def test_erasure_take_is_free_on_the_wire(self):
        from repro.core.costs import checkpoint_cost_terms

        terms = checkpoint_cost_terms(
            self.DIMS, pr=2, pc=4, machine=M, parity=1, mode="erasure"
        )
        assert len(terms.terms) == 1
        (term,) = terms.terms
        assert term.category == "ckpt.parity"
        assert term.cost.total == 0.0
        assert term.volume > 0  # the locally-stored chunk is accounted

    def test_replicate_take_matches_allgather_literal(self):
        from repro.core.costs import checkpoint_cost_terms

        pr, pc = 4, 2
        terms = checkpoint_cost_terms(
            self.DIMS, pr=pr, pc=pc, machine=M, mode="replicate"
        )
        layers = len(self.DIMS) - 1
        assert len(terms.terms) == layers
        total = terms.total
        literal = sum(
            M.alpha * lg(pr)
            + M.beta * (pr - 1) / pr * self.DIMS[i + 1] * self.DIMS[i]
            for i in range(layers)
        )
        assert total == pytest.approx(literal)
        # Momentum doubles the state: one extra term per layer.
        with_v = checkpoint_cost_terms(
            self.DIMS, pr=pr, pc=pc, machine=M, mode="replicate", momentum=True
        )
        assert len(with_v.terms) == 2 * layers

    def test_narrow_grid_falls_back_to_replicate(self):
        from repro.core.costs import checkpoint_cost_terms

        erasure_narrow = checkpoint_cost_terms(
            self.DIMS, pr=2, pc=1, machine=M, parity=1, mode="erasure"
        )
        replicate = checkpoint_cost_terms(
            self.DIMS, pr=2, pc=1, machine=M, mode="replicate"
        )
        assert [t.category for t in erasure_narrow.terms] == [
            t.category for t in replicate.terms
        ]
        assert all(t.category == "ckpt.replicate" for t in erasure_narrow.terms)

    def test_recovery_terms_census_and_fetch(self):
        from repro.core.costs import (
            CKPT_CENSUS_FIELDS,
            checkpoint_chunk_bytes,
            checkpoint_recovery_cost_terms,
        )

        survivors, held, have = 7, (2,) * 7, (1,) * 6 + (0,)
        terms = checkpoint_recovery_cost_terms(
            survivors=survivors, held=held, machine=M,
            dims=self.DIMS, step=4, pr=2, k=3, have=have,
        )
        assert [t.category for t in terms.terms] == ["ckpt.census", "ckpt.fetch"]
        census, fetch = terms.terms
        census_bytes = sum(held) * CKPT_CENSUS_FIELDS * 8
        assert census.volume * 8 == pytest.approx(
            census_bytes * (survivors - 1) / survivors
        )
        shard_bytes = 16 + checkpoint_chunk_bytes(self.DIMS, pr=2, k=3) + 8 * 4
        assert fetch.volume * 8 == pytest.approx(
            sum(have) * shard_bytes * (survivors - 1) / survivors
        )

    def test_validation(self):
        from repro.core.costs import (
            checkpoint_cost_terms,
            checkpoint_recovery_cost_terms,
        )

        with pytest.raises(StrategyError):
            checkpoint_cost_terms(self.DIMS, pr=0, pc=2, machine=M)
        with pytest.raises(StrategyError):
            checkpoint_cost_terms(self.DIMS, pr=2, pc=2, machine=M, mode="nope")
        with pytest.raises(StrategyError):
            checkpoint_recovery_cost_terms(
                survivors=2, held=(1, 1, 1), machine=M
            )
        with pytest.raises(StrategyError):
            checkpoint_recovery_cost_terms(
                survivors=2, held=(1, 1), machine=M, have=(1, 1)
            )  # fetch requested without geometry
