"""Integration tests: integrated domain+batch+model CNN training vs serial."""

import numpy as np
import pytest

from repro.data.synthetic import synthetic_images
from repro.dist.integrated import (
    CNNParams,
    IntegratedCNNConfig,
    distributed_cnn_train,
    serial_cnn_train,
)
from repro.errors import ConfigurationError

CFG = IntegratedCNNConfig(
    in_channels=2,
    height=8,
    width=8,
    conv_channels=(4, 6),
    conv_kernels=(3, 3),
    pool_after=(True, False),
    fc_dims=(20, 5),
)
X, Y = synthetic_images(24, 2, 8, 8, 5, seed=7)
PARAMS = CNNParams.init(CFG, seed=3)
KW = dict(batch=8, steps=4, lr=0.1, momentum=0.9)
SERIAL_P, SERIAL_L = serial_cnn_train(CFG, PARAMS, X, Y, **KW)


class TestConfig:
    def test_feature_count(self):
        # 8x8 -> pool -> 4x4, channels 6 -> 96 features.
        assert CFG.feature_count() == 6 * 4 * 4

    def test_heights_chain(self):
        assert CFG.heights() == (8, 4, 4)

    def test_domain_validation_accepts_aligned(self):
        CFG.validate_for_domain(2)

    def test_domain_validation_rejects_misaligned(self):
        with pytest.raises(ConfigurationError):
            CFG.validate_for_domain(3)

    def test_domain_validation_rejects_odd_pool_blocks(self):
        cfg = IntegratedCNNConfig(
            in_channels=1, height=6, width=6,
            conv_channels=(2,), conv_kernels=(3,), pool_after=(True,),
            fc_dims=(4,),
        )
        # 6 rows over 2 parts -> local height 3, odd: 2x2 pooling breaks.
        with pytest.raises(ConfigurationError):
            cfg.validate_for_domain(2)
        # 6 over 3 -> local height 2, even: fine.
        cfg.validate_for_domain(3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(conv_channels=(4,), conv_kernels=(3, 3), pool_after=(True,)),
            dict(conv_channels=(4,), conv_kernels=(4,), pool_after=(False,)),
            dict(conv_channels=(), conv_kernels=(), pool_after=()),
        ],
    )
    def test_invalid_configs(self, kwargs):
        base = dict(in_channels=1, height=8, width=8, fc_dims=(4,))
        with pytest.raises(ConfigurationError):
            IntegratedCNNConfig(**{**base, **kwargs})


class TestParams:
    def test_shapes(self):
        p = CNNParams.init(CFG, seed=0)
        assert p.conv_weights[0].shape == (4, 2, 3, 3)
        assert p.conv_weights[1].shape == (6, 4, 3, 3)
        assert p.fc_weights[0].shape == (20, 96)
        assert p.fc_weights[1].shape == (5, 20)

    def test_copy_is_deep(self):
        p = CNNParams.init(CFG, seed=0)
        q = p.copy()
        q.conv_weights[0][0, 0, 0, 0] = 123.0
        assert p.conv_weights[0][0, 0, 0, 0] != 123.0


class TestSerial:
    def test_loss_decreases(self):
        _, losses = serial_cnn_train(CFG, PARAMS, X, Y, batch=8, steps=20, lr=0.1)
        assert losses[-1] < losses[0]


@pytest.mark.parametrize("pr,pc", [(1, 1), (2, 1), (4, 1), (1, 2), (2, 2), (2, 4)])
class TestDistributedMatchesSerial:
    def test_losses_and_weights(self, pr, pc):
        dp, dl, _ = distributed_cnn_train(CFG, PARAMS, X, Y, pr=pr, pc=pc, **KW)
        np.testing.assert_allclose(dl, SERIAL_L, rtol=1e-9, atol=1e-12)
        for got, expected in zip(dp.all_params(), SERIAL_P.all_params()):
            np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-10)


class TestStridedConfig:
    """Strided (downsampling) convolutions in the integrated trainer."""

    CFG = IntegratedCNNConfig(
        in_channels=3, height=16, width=16,
        conv_channels=(6, 8), conv_kernels=(3, 3), pool_after=(False, True),
        conv_strides=(2, 1),
        fc_dims=(24, 5),
    )

    def test_shape_chain(self):
        assert self.CFG.heights() == (16, 8, 4)
        assert self.CFG.feature_count() == 8 * 4 * 4

    def test_default_strides_are_ones(self):
        assert CFG.conv_strides == (1, 1)

    @pytest.mark.parametrize("pr,pc", [(2, 1), (4, 1), (2, 2)])
    def test_matches_serial(self, pr, pc):
        from repro.data.synthetic import synthetic_images

        x, y = synthetic_images(24, 3, 16, 16, 5, seed=21)
        params = CNNParams.init(self.CFG, seed=1)
        sp, sl = serial_cnn_train(self.CFG, params, x, y, batch=8, steps=3, lr=0.1)
        dp, dl, _ = distributed_cnn_train(
            self.CFG, params, x, y, pr=pr, pc=pc, batch=8, steps=3, lr=0.1
        )
        np.testing.assert_allclose(dl, sl, rtol=1e-9)
        for got, expected in zip(dp.all_params(), sp.all_params()):
            np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-10)

    def test_stride_misalignment_rejected(self):
        with pytest.raises(ConfigurationError):
            IntegratedCNNConfig(
                in_channels=1, height=9, width=9,
                conv_channels=(2,), conv_kernels=(3,), pool_after=(False,),
                conv_strides=(2,), fc_dims=(4,),
            )

    def test_bad_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            IntegratedCNNConfig(
                in_channels=1, height=8, width=8,
                conv_channels=(2,), conv_kernels=(3,), pool_after=(False,),
                conv_strides=(0,), fc_dims=(4,),
            )


class TestDistributedValidation:
    def test_misaligned_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            distributed_cnn_train(CFG, PARAMS, X, Y, pr=3, pc=1, **KW)

    def test_batch_must_divide_over_pc(self):
        with pytest.raises(ConfigurationError):
            distributed_cnn_train(CFG, PARAMS, X, Y, pr=1, pc=3, **KW)

    def test_halo_traffic_present_for_3x3_convs(self):
        from repro.machine.params import cori_knl

        _, _, res = distributed_cnn_train(
            CFG, PARAMS, X, Y, pr=2, pc=1, batch=8, steps=1, lr=0.1,
            machine=cori_knl(), trace=True,
        )
        assert res.time > 0
