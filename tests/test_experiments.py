"""Tests for the experiment harnesses: every registered experiment runs,
and the figure-level claims the paper makes hold in the reproduction."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments import fig6, fig7, fig8, fig9, fig10, eq5_crossover, table1, fig4
from repro.experiments import summa_ablation, ablations
from repro.experiments.common import default_setting


SETTING = default_setting()


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {"table1", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10",
                    "eq5", "summa", "ablations", "dist", "placements", "scaling",
                    "sensitivity", "pareto", "modelcheck"}
        assert expected == set(EXPERIMENTS)

    def test_get_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_entries_have_paper_refs(self):
        for entry in EXPERIMENTS.values():
            assert entry.paper_ref
            assert callable(entry.runner)


class TestTable1:
    def test_reports_the_fixed_options(self):
        res = table1.run(SETTING)
        text = res.render()
        assert "AlexNet" in text
        assert "1,200,000" in text
        assert "60,954,656" in text
        assert "2 us" in text and "6 GB/s" in text

    def test_layer_table_has_eight_rows(self):
        res = table1.run(SETTING)
        assert len(res.tables[1]) == 8


class TestFig4:
    def test_best_batch_is_256(self):
        res = fig4.run(SETTING)
        assert any("best batch size = 256" in n for n in res.notes)

    def test_covers_published_range(self):
        res = fig4.run(SETTING)
        col = res.main_table().column("batch")
        assert col[0] == 1 and col[-1] == 2048

    def test_epoch_times_within_axis_range(self):
        """Fig. 4's y-axis spans ~10^3.5 .. 10^4.5 seconds."""
        res = fig4.run(SETTING)
        for t in res.main_table().column("epoch_s"):
            assert 10**3.4 <= t <= 10**4.6


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(SETTING, panels=((8, 2048), (512, 2048)))

    def test_small_p_prefers_pure_batch(self, result):
        """Fig. 6(a): 'the benefit ... is not realized on a relatively
        small number of processors'."""
        summary = result.main_table()
        row_p8 = next(r for r in summary.rows if r["P"] == 8)
        assert row_p8["best_grid"] == "1x8"

    def test_large_p_prefers_integration(self, result):
        summary = result.main_table()
        row = next(r for r in summary.rows if r["P"] == 512)
        assert row["best_grid"] not in ("1x512", "512x1")
        assert row["speedup_total"] > 1.3
        assert row["speedup_comm"] > 2.0

    def test_charts_mark_best(self, result):
        assert all("<= best" in chart for chart in result.charts)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run(SETTING, panels=((512, 2048),))

    def test_beats_fig6_configuration(self, result):
        """'Notice the significant improvement in best time compared to
        Fig. 6' — and ours lands near the paper's 2.5x / 9.7x."""
        row = result.main_table().rows[0]
        assert row["speedup_total"] > 1.8
        assert row["speedup_comm"] > 6.0
        six = fig6.run(SETTING, panels=((512, 2048),)).main_table().rows[0]
        assert row["best_total_s"] < six["best_total_s"]


class TestFig8:
    def test_overlap_keeps_speedup_near_2x(self):
        res = fig8.run(SETTING)
        row = res.main_table().rows[0]
        assert row["speedup_total"] > 1.4

    def test_overlap_times_below_non_overlapped(self):
        plain = fig7.run(SETTING, panels=((512, 2048),)).main_table().rows[0]
        over = fig8.run(SETTING).main_table().rows[0]
        assert over["best_total_s"] <= plain["best_total_s"] + 1e-9


class TestFig9:
    def test_weak_scaling_keeps_integration_winning(self):
        res = fig9.run(SETTING, panels=((64, 256), (512, 2048)))
        for row in res.main_table().rows:
            assert row["speedup_total"] >= 1.0
        last = res.main_table().rows[-1]
        assert last["best_grid"] not in ("1x512", "512x1")


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run(SETTING)

    def test_pure_batch_absent_beyond_limit(self, result):
        rows = result.main_table().rows
        beyond = [r for r in rows if r["P"] > 512]
        assert beyond and all(r["strategy"] != "pure batch" for r in beyond)

    def test_domain_scaling_monotone(self, result):
        """The Fig. 10 headline: epoch time keeps falling past P = B."""
        rows = [r for r in result.main_table().rows if r["strategy"].startswith("domain")]
        totals = [r["total_s"] for r in rows]
        assert all(t1 < t0 for t0, t1 in zip(totals, totals[1:]))

    def test_domain_halo_traffic_negligible_vs_model_allgather(self, result):
        """Sec. 2.4's mechanism: the domain halo volume is tiny compared
        with the model-parallel activation all-gather it replaces — the
        blocking part of the communication all but disappears.  (Under
        the literal, non-overlapped Eq. 9 the conv-model grids can still
        total lower because domain replicates all conv weights; the
        paper's preference for domain rests on the halo being fully
        overlappable while the all-gather is blocking — recorded as a
        reproduction nuance in the experiment notes.)"""
        from repro.core.costs import integrated_cost
        from repro.core.strategy import ProcessGrid, Strategy

        net, m = SETTING.network, SETTING.machine
        grid = ProcessGrid(8, 512)
        dom = integrated_cost(net, 512, Strategy.conv_domain_fc_model(net, grid), m)
        mod = integrated_cost(net, 512, Strategy.same_grid_model(net, grid), m)
        halo = dom.filter("domain.").total
        allgather = mod.filter("model.allgather_fwd").total
        assert halo < 0.2 * allgather


class TestEq5:
    def test_conv4_note_matches_paper_ballpark(self):
        res = eq5_crossover.run(SETTING)
        note = next(n for n in res.notes if "conv4" in n)
        assert "13.6" in note

    def test_fc_layers_have_large_crossover(self):
        res = eq5_crossover.run(SETTING)
        table = res.tables[0]
        fc_rows = [r for r in table.rows if r["kind"] == "fc"]
        assert all(r["crossover_B"] > 500 for r in fc_rows)


class TestSummaAndAblations:
    def test_summa_never_wins(self):
        res = summa_ablation.run(SETTING)
        assert any("no configuration" in n for n in res.notes)
        for table in res.tables:
            for row in table.rows:
                if "ratio_a_over_1p5d" in row:
                    assert row["ratio_a_over_1p5d"] >= 1.0

    def test_summa_measured_volumes_confirm_ordering(self):
        """The executable SUMMA-C moved at least the 1.5D volume in every
        traced configuration (Sec. 4, verified end to end)."""
        res = summa_ablation.run(SETTING)
        measured = res.tables[-1]
        assert len(measured) >= 3
        for row in measured.rows:
            assert row["summa_over_1p5d"] >= 1.0

    def test_ablations_redistribution_bound(self):
        res = ablations.run(SETTING)
        redis = res.tables[0]
        assert all(r["relative_to_model_step"] <= 1 / 3 + 1e-9 for r in redis.rows)

    def test_ablations_memory_tradeoff_rows_present(self):
        res = ablations.run(SETTING)
        mem = res.tables[1]
        grids = [r["grid"] for r in mem.rows]
        assert "1x512" in grids and "16x32" in grids


class TestPlacements:
    def test_decision_rule_shifts_with_batch(self):
        """Sec. 2.4: model placements migrate out of the convolutions as
        the batch grows past the Eq. 5 crossovers."""
        from repro.experiments import placements

        res = placements.run(SETTING)
        rows = {r["B"]: r for r in res.main_table().rows}
        assert rows[4]["conv4"] == "model" and rows[4]["conv5"] == "model"
        assert rows[2048]["conv4"] == "batch" and rows[2048]["conv5"] == "batch"
        assert rows[2048]["fc6"] == "model" and rows[2048]["fc7"] == "model"

    def test_early_layer_never_model_at_large_batch(self):
        from repro.experiments import placements

        res = placements.run(SETTING)
        for row in res.main_table().rows:
            if row["B"] >= 256:
                assert row["conv1"] in ("batch", "domain")


class TestScalingCurves:
    def test_strong_curve_passes_batch_limit(self):
        from repro.experiments import scaling_curves

        res = scaling_curves.run(
            SETTING, strong_processes=(128, 512, 1024), strong_batch=512,
            weak_pairs=((128, 512),),
        )
        table = res.tables[0]
        epochs = table.column("epoch_s")
        assert epochs[0] > epochs[1] > epochs[2]
        assert table.column("pure_batch_s")[-1] is None  # P=1024 > B


class TestSensitivity:
    def test_slow_network_amplifies_integration(self):
        from repro.experiments import sensitivity

        res = sensitivity.run(
            SETTING, bandwidths_gbps=(1.0, 100.0), latencies_us=(2.0,)
        )
        rows = {r["bandwidth_GBps"]: r for r in res.main_table().rows}
        assert rows[1.0]["speedup"] > rows[100.0]["speedup"]
        assert rows[100.0]["speedup"] >= 1.0


class TestModelCheck:
    def test_prediction_matches_execution(self):
        """The headline validation: Eq. 8's charge equals the executed
        algorithm's emergent communication time within a few percent."""
        from repro.experiments import modelcheck

        res = modelcheck.run(SETTING, cases=(((256, 512, 256, 8), 64, 2, 2),
                                             ((256, 512, 256, 8), 64, 1, 4)))
        for row in res.main_table().rows:
            assert 0.95 <= row["simulated_over_predicted"] <= 1.05

    def test_switching_prediction_includes_eq6(self):
        """The composed prediction — Fig. 5 collectives plus Eq. 6
        redistribution all-gathers — matches the executed switching
        trainer's emergent communication time."""
        from repro.experiments import modelcheck

        res = modelcheck.run(SETTING, cases=(((256, 512, 256, 8), 64, 2, 2),))
        sw = res.tables[1]
        assert len(sw) >= 3
        for row in sw.rows:
            assert 0.95 <= row["simulated_over_predicted"] <= 1.05

    def test_cnn_prediction_covers_halos_and_redistribution(self):
        """The Eq. 7/9 composition (halos incl. strided, Eq. 6
        redistribution, Fig. 5 FC collectives) matches the executed
        integrated CNN trainer."""
        from repro.experiments import modelcheck

        res = modelcheck.run(SETTING, cases=(((256, 512, 256, 8), 64, 2, 2),))
        cnn = res.tables[2]
        assert len(cnn) >= 3
        for row in cnn.rows:
            assert 0.9 <= row["simulated_over_predicted"] <= 1.1


class TestRunExperiment:
    @pytest.mark.parametrize(
        "experiment_id", ["table1", "fig4", "eq5", "summa", "ablations", "placements"]
    )
    def test_cheap_experiments_render(self, experiment_id):
        res = run_experiment(experiment_id)
        text = res.render()
        assert res.experiment_id == experiment_id
        assert res.tables and text.startswith(f"=== {experiment_id}")
