"""Tests for the per-layer grid-switching trainer (executable Fig. 7 /
Eq. 6): exact agreement with serial SGD for every placement mix, and
redistribution traffic matching the Eq. 6 volume."""

import numpy as np
import pytest

from repro.data.synthetic import synthetic_classification
from repro.dist.switching import distributed_switching_mlp_train
from repro.dist.train import MLPParams, serial_mlp_train
from repro.errors import StrategyError
from repro.machine.params import cori_knl
from repro.simmpi.engine import SimEngine

X, Y = synthetic_classification(12, 64, 5, seed=42)
PARAMS = MLPParams.init([12, 16, 10, 5], seed=1)
KW = dict(batch=16, steps=5, lr=0.1, momentum=0.9)
SERIAL_W, SERIAL_L = serial_mlp_train(PARAMS, X, Y, **KW)


@pytest.mark.parametrize(
    "placements,pr,pc",
    [
        (["batch", "model", "model"], 2, 2),   # the Fig. 7 shape
        (["batch", "batch", "model"], 2, 4),
        (["model", "batch", "model"], 2, 2),   # switch both directions
        (["batch", "batch", "batch"], 2, 2),   # degenerate: pure batch
        (["model", "model", "model"], 3, 2),   # degenerate: plain 1.5D
        (["batch", "model", "batch"], 4, 2),
        (["batch", "model", "model"], 1, 4),   # Pr = 1: switches are no-ops
    ],
)
class TestSwitchingMatchesSerial:
    def test_losses(self, placements, pr, pc):
        _, losses, _ = distributed_switching_mlp_train(
            PARAMS, X, Y, placements=placements, pr=pr, pc=pc, **KW
        )
        np.testing.assert_allclose(losses, SERIAL_L, rtol=1e-10, atol=1e-13)

    def test_weights(self, placements, pr, pc):
        weights, _, _ = distributed_switching_mlp_train(
            PARAMS, X, Y, placements=placements, pr=pr, pc=pc, **KW
        )
        for got, expected in zip(weights, SERIAL_W.weights):
            np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-11)


class TestValidation:
    def test_wrong_placement_count(self):
        with pytest.raises(StrategyError):
            distributed_switching_mlp_train(
                PARAMS, X, Y, placements=["batch"], pr=2, pc=2, **KW
            )

    def test_unknown_placement(self):
        with pytest.raises(StrategyError):
            distributed_switching_mlp_train(
                PARAMS, X, Y, placements=["batch", "domain", "model"], pr=2, pc=2, **KW
            )


class TestRedistributionTraffic:
    def test_allgather_volume_matches_eq6(self):
        """The batch->model switch moves (Pr-1)/Pr of the B/Pc x d panel
        through each rank per iteration — Eq. 6's all-gather volume."""
        pr, pc = 4, 1
        placements = ["batch", "model", "model"]
        _, _, res = distributed_switching_mlp_train(
            PARAMS, X, Y, placements=placements, pr=pr, pc=pc,
            batch=16, steps=1, lr=0.1, machine=cori_knl(), trace=False,
        )
        assert res.time > 0

    def test_pr1_has_no_redistribution_messages(self):
        """With Pr = 1 the layout switch is the identity: tracing a 1x4
        run of a batch->model mix shows only dW/loss all-reduce traffic
        (no all-gather rounds beyond those collectives)."""
        from repro.dist.switching import switching_mlp_train_program

        engine = SimEngine(4, cori_knl(), trace=True)
        engine.run(
            switching_mlp_train_program,
            PARAMS,
            X,
            Y,
            placements=["batch", "model", "model"],
            pr=1,
            pc=4,
            batch=16,
            steps=1,
            lr=0.1,
        )
        ops = {e.op for e in engine.tracer.events if e.peer == -1}
        assert not any(op.startswith("allgather") for op in ops)
