"""Tests for the static HTML regression-observatory dashboard."""

from repro.observe.registry import MetricTrend, compute_trends
from repro.report.dash import dashboard_html, write_dashboard
from tests.test_observe_registry import make_entry, series_history


def trend(status="ok", metric="makespan_s", series="run:test:a=1,grid=2x2",
          values=(1.0, 1.0, 1.0, 1.0, 1.0)):
    return MetricTrend(
        series=series, metric=metric, values=tuple(values),
        median=values[-1], mad=0.0, latest=values[-1],
        deviation=0.0, status=status,
    )


class TestDashboardHtml:
    def test_selfcontained_document(self):
        html = dashboard_html([trend()])
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        body = html.split("</style>")[-1]
        assert "http://" not in body and "https://" not in body
        assert "<script" not in html  # static: no JS at all

    def test_trend_rows_and_sparklines(self):
        html = dashboard_html(
            [trend(values=(1.0, 2.0, 3.0, 2.5, 2.0))]
        )
        assert "makespan_s" in html
        assert "<polyline" in html  # the sparkline itself
        assert "run:test:a=1,grid=2x2" in html

    def test_status_badges_carry_text_not_just_color(self):
        for status in ("ok", "warn", "drift", "short", "new"):
            html = dashboard_html([trend(status=status)])
            assert f">{status}</span>" in html

    def test_heatmap_covers_span_cost_terms(self):
        trends = [
            trend(metric="span.fwd.time_s"),
            trend(metric="span.bwd_dw.time_s", status="warn"),
        ]
        html = dashboard_html(trends)
        assert "fwd" in html and "bwd_dw" in html

    def test_health_timeline_marks_events(self):
        events = [
            {"kind": "straggler", "rank": 0, "t_s": 1e-6,
             "severity": "warn", "detail": "slow", "step": 2},
            {"kind": "ckpt_degraded", "rank": 1, "t_s": 2e-6,
             "severity": "crit", "detail": "degraded"},
        ]
        html = dashboard_html(
            [trend()], health_runs=[("run.json", 3e-6, events)]
        )
        assert "straggler" in html and "ckpt_degraded" in html
        assert "run.json" in html

    def test_escapes_untrusted_strings(self):
        html = dashboard_html(
            [trend(series="run:<script>alert(1)</script>,grid=1x1")]
        )
        assert "<script>alert(1)</script>" not in html

    def test_dark_mode_styles_present(self):
        html = dashboard_html([trend()])
        assert "prefers-color-scheme: dark" in html

    def test_empty_registry_still_renders(self):
        html = dashboard_html([])
        assert html.startswith("<!DOCTYPE html>")

    def test_real_trends_round_trip(self):
        trends = compute_trends(
            series_history([1.0, 1.0, 1.0, 1.0, 1.2])
            + [make_entry(series="run:other:b=1,grid=1x1", makespan_s=2.0)]
        )
        html = dashboard_html(trends)
        assert "drift" in html and "new" in html


class TestWriteDashboard:
    def test_writes_file_and_creates_dirs(self, tmp_path):
        path = str(tmp_path / "deep" / "dash.html")
        out = write_dashboard(path, [trend()], title="observatory")
        assert out == path
        content = open(path).read()
        assert "observatory" in content
