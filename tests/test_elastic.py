"""Integration tests for elastic fault-tolerant 1.5D training.

The headline guarantee: a run that loses ranks mid-training shrinks to
the surviving grid, restores the newest common checkpoint, and finishes
on the *same* synchronous-SGD trajectory — final weights match the
uninterrupted serial reference to reduction-order accuracy, and the
whole scenario replays bit-identically from the fault plan's seed.
"""

import numpy as np
import pytest

from repro.dist.elastic import (
    Checkpoint,
    elastic_mlp_train,
    replan_grid,
)
from repro.dist.erasure import MODE_ERASURE, MODE_REPLICATE
from repro.dist.sgd import SGD
from repro.dist.train import MLPParams, serial_mlp_train
from repro.errors import ConfigurationError, RankFailedError
from repro.machine.params import cori_knl
from repro.simmpi.faults import (
    Cascade,
    Crash,
    FaultPlan,
    LinkFault,
    Straggler,
    TransientFault,
)

DIMS = (6, 8, 5)
BATCH = 8
STEPS = 8
SEED = 0

RNG = np.random.default_rng(SEED)
X = RNG.standard_normal((DIMS[0], 3 * BATCH))
Y = RNG.integers(0, DIMS[-1], 3 * BATCH)
PARAMS0 = MLPParams.init(DIMS, seed=1)


def _serial(momentum=0.0):
    return serial_mlp_train(
        PARAMS0, X, Y, batch=BATCH, steps=STEPS, lr=0.05, momentum=momentum
    )


def _elastic(faults=None, momentum=0.0, **kw):
    kw.setdefault("checkpoint_every", 2)
    kw.setdefault("pr", 2)
    kw.setdefault("pc", 2)
    return elastic_mlp_train(
        PARAMS0,
        X,
        Y,
        batch=BATCH,
        steps=STEPS,
        lr=0.05,
        momentum=momentum,
        faults=faults,
        **kw,
    )


class TestElasticNoFaults:
    def test_matches_serial_reference(self):
        ref_params, ref_losses = _serial()
        res = _elastic()
        assert not res.recovered
        assert res.grids == [(2, 2)]
        np.testing.assert_allclose(res.losses, ref_losses, rtol=1e-10, atol=1e-13)
        for w, r in zip(res.weights, ref_params.weights):
            np.testing.assert_allclose(w, r, rtol=1e-10, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _elastic(checkpoint_every=0)


class TestElasticRecovery:
    def test_crash_shrinks_restores_and_matches_reference(self):
        plan = FaultPlan(seed=3, crashes=(Crash(rank=1, at_step=5),))
        res = _elastic(faults=plan, trace=True)
        assert res.sim.failed == (1,)
        assert res.recovered
        # Re-planned to the best 3-rank grid chosen by the Eq. 8 cost model.
        assert res.grids[1] == replan_grid(3, DIMS, BATCH, cori_knl())
        # Resumed from a checkpoint boundary at or before the crash step.
        assert res.restore_steps and res.restore_steps[0] <= 5
        assert res.restore_steps[0] % 2 == 0
        # The recovered trajectory matches the uninterrupted reference.
        ref_params, ref_losses = _serial()
        np.testing.assert_allclose(res.losses, ref_losses, rtol=1e-10, atol=1e-13)
        for w, r in zip(res.weights, ref_params.weights):
            np.testing.assert_allclose(w, r, rtol=1e-10, atol=1e-12)

    def test_recovery_matches_reference_restarted_from_checkpoint(self):
        """Explicit acceptance check: continue serially from the very
        checkpoint the recovery restored, and compare final weights."""
        plan = FaultPlan(seed=3, crashes=(Crash(rank=1, at_step=5),))
        res = _elastic(faults=plan)
        s = res.restore_steps[0]
        # Rebuild the step-s state by running serial SGD to step s...
        ref_at_s, _ = serial_mlp_train(
            PARAMS0, X, Y, batch=BATCH, steps=s, lr=0.05
        )
        # ... then continue, uninterrupted, for the remaining steps (the
        # batch schedule is a pure function of the absolute step index).
        params = ref_at_s.copy()
        opt = SGD(lr=0.05)
        from repro.dist.train import _batch_columns, _mlp_forward
        from repro.dist.loss import softmax_cross_entropy
        from repro.dist.layers import relu_grad

        for step in range(s, STEPS):
            cols = _batch_columns(step, BATCH, X.shape[1], None)
            xb, yb = X[:, cols], Y[cols]
            acts, zs = _mlp_forward(params.weights, xb)
            _, dz = softmax_cross_entropy(zs[-1], yb, global_batch=BATCH)
            grads = [None] * len(params.weights)
            for i in range(len(params.weights) - 1, -1, -1):
                grads[i] = dz @ acts[i].T
                if i > 0:
                    da = params.weights[i].T @ dz
                    dz = relu_grad(zs[i - 1], da)
            opt.step(params.weights, grads)
        for w, r in zip(res.weights, params.weights):
            np.testing.assert_allclose(w, r, rtol=1e-10, atol=1e-10)

    def test_momentum_state_survives_recovery(self):
        plan = FaultPlan(seed=3, crashes=(Crash(rank=2, at_step=5),))
        ref_params, ref_losses = _serial(momentum=0.9)
        res = _elastic(faults=plan, momentum=0.9)
        assert res.recovered
        np.testing.assert_allclose(res.losses, ref_losses, rtol=1e-10, atol=1e-13)
        for w, r in zip(res.weights, ref_params.weights):
            np.testing.assert_allclose(w, r, rtol=1e-10, atol=1e-10)

    def test_double_crash_two_recoveries(self):
        plan = FaultPlan(
            seed=3, crashes=(Crash(rank=1, at_step=3), Crash(rank=2, at_step=6))
        )
        ref_params, _ = _serial()
        res = _elastic(faults=plan)
        assert res.sim.failed == (1, 2)
        assert len(res.grids) == 3 and res.grids[-1] == (1, 2)
        assert len(res.restore_steps) == 2
        for w, r in zip(res.weights, ref_params.weights):
            np.testing.assert_allclose(w, r, rtol=1e-10, atol=1e-12)

    def test_crash_with_ambient_faults(self):
        """Recovery still works with a straggler, a degraded link and a
        transient retry in the mix — and stays numerically exact."""
        plan = FaultPlan(
            seed=11,
            crashes=(Crash(rank=3, at_step=4),),
            transients=(TransientFault(rank=0, send_index=4, attempts=2),),
            links=(LinkFault(src=0, dst=2, latency_factor=3.0, bandwidth_factor=0.5),),
            stragglers=(Straggler(rank=2, factor=1.4),),
        )
        ref_params, _ = _serial()
        res = _elastic(faults=plan, trace=True)
        assert res.sim.failed == (3,)
        for w, r in zip(res.weights, ref_params.weights):
            np.testing.assert_allclose(w, r, rtol=1e-10, atol=1e-12)
        ops = {e.op for e in res.engine.tracer.faults()}
        assert {"fault.crash", "fault.recovery", "fault.transient", "fault.link"} <= ops

    def test_all_ranks_crashing_raises(self):
        plan = FaultPlan(
            crashes=tuple(Crash(rank=r, at_step=2) for r in range(4))
        )
        with pytest.raises(RankFailedError):
            _elastic(faults=plan, timeout=5.0)


class TestElasticDeterminism:
    def test_identical_traces_and_weights_across_runs(self):
        plan = FaultPlan(seed=5, crashes=(Crash(rank=1, at_step=5),))
        a = _elastic(faults=plan, trace=True)
        b = _elastic(faults=plan, trace=True)
        assert a.sim.failed == b.sim.failed
        assert a.sim.clocks == b.sim.clocks
        assert a.grids == b.grids and a.restore_steps == b.restore_steps
        assert a.engine.tracer.canonical() == b.engine.tracer.canonical()
        for wa, wb in zip(a.weights, b.weights):
            assert np.array_equal(wa, wb)
        assert a.losses == b.losses

    def test_fault_events_carry_virtual_times(self):
        plan = FaultPlan(seed=5, crashes=(Crash(rank=1, at_step=5),))
        res = _elastic(faults=plan, trace=True)
        crash = res.engine.tracer.faults("crash")
        recoveries = res.engine.tracer.faults("recovery")
        assert len(crash) == 1 and crash[0].rank == 1
        assert {e.rank for e in recoveries} == {0, 2, 3}
        assert all(e.t_start >= crash[0].t_start for e in recoveries)


class TestCheckpointModes:
    """Erasure-coded sharded checkpoints vs full replication."""

    def test_modes_bit_identical_on_survivable_crash(self):
        # Crash on an odd step (not a take step) so both modes restore
        # the same checkpoint: the runs must then be interchangeable
        # bit for bit.
        plan = FaultPlan(seed=3, crashes=(Crash(rank=1, at_step=5),))
        er = _elastic(faults=plan)
        rp = _elastic(faults=plan, ckpt_mode="replicate")
        assert er.restore_steps == rp.restore_steps == [4]
        assert not er.degraded and not rp.degraded
        for a, b in zip(er.weights, rp.weights):
            assert a.tobytes() == b.tobytes()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _elastic(ckpt_mode="holographic")
        with pytest.raises(ConfigurationError):
            _elastic(parity=0)

    def test_erasure_take_stores_fraction_and_moves_nothing(self):
        er = _elastic(trace=True, pr=2, pc=4, parity=1)
        rp = _elastic(trace=True, pr=2, pc=4, parity=1, ckpt_mode="replicate")

        def stored(res, mode):
            takes = [
                e for e in res.engine.tracer.canonical()
                if e.op == "ckpt.take" and int(e.tag[0]) > 0
            ]
            assert takes and all(int(e.tag[1]) == mode for e in takes)
            return sum(int(e.tag[2]) for e in takes)

        # k = pc - parity = 3 data chunks per stripe, so sharded storage
        # is several times smaller than full replication...
        assert stored(rp, MODE_REPLICATE) > 2 * stored(er, MODE_ERASURE)
        # ... and the erasure takes put zero checkpoint bytes on the
        # wire (every send inside a checkpoint span would carry one).
        ckpt_sends = [
            e for e in er.engine.tracer.canonical()
            if e.op == "send" and any(l.startswith("checkpoint") for l in e.span)
        ]
        assert ckpt_sends == []

    def test_concurrent_double_crash_within_parity(self):
        # Ranks 1 and 2 share a row stripe of the 2x4 grid: two
        # concurrent losses, survivable bit-exactly with parity 2.
        plan = FaultPlan(
            seed=3, crashes=(Crash(rank=1, at_step=5), Crash(rank=2, at_step=5))
        )
        res = _elastic(faults=plan, pr=2, pc=4, parity=2)
        assert sorted(res.sim.failed) == [1, 2]
        assert res.restore_steps == [4] and not res.degraded
        ref_params, _ = _serial()
        for w, r in zip(res.weights, ref_params.weights):
            np.testing.assert_allclose(w, r, rtol=1e-10, atol=1e-12)

    def test_concurrent_loss_beyond_parity_is_declared(self):
        # The same double crash with a single parity shard loses two
        # chunks of one stripe: the census must *declare* degradation
        # (here all the way to the step-0 replica) — and the replayed
        # run is still numerically correct, just redone from further
        # back.
        plan = FaultPlan(
            seed=3, crashes=(Crash(rank=1, at_step=5), Crash(rank=2, at_step=5))
        )
        res = _elastic(faults=plan, pr=2, pc=4, parity=1)
        assert res.restore_steps == [0]
        assert res.degraded and res.degraded_steps == [0]
        ref_params, _ = _serial()
        for w, r in zip(res.weights, ref_params.weights):
            np.testing.assert_allclose(w, r, rtol=1e-10, atol=1e-12)

    def test_narrow_grid_falls_back_to_replication(self):
        # Pc - parity < 1 cannot stripe; the trainer must silently use
        # full replication (and still recover).
        plan = FaultPlan(seed=3, crashes=(Crash(rank=1, at_step=5),))
        res = _elastic(faults=plan, pr=2, pc=1, trace=True)
        takes = [
            e for e in res.engine.tracer.canonical() if e.op == "ckpt.take"
        ]
        assert takes and all(int(e.tag[1]) == MODE_REPLICATE for e in takes)
        assert res.restore_steps == [4] and not res.degraded

    def test_cascading_crash_during_recovery(self):
        # Rank 2 dies while recovering from rank 1's crash; recovery
        # restarts from the top and still restores the newest
        # checkpoint bit-exactly (two total losses, parity 2).
        plan = FaultPlan(
            seed=3,
            crashes=(Crash(rank=1, at_step=4),),
            cascades=(Cascade(rank=2, at_recovery=1),),
        )
        res = _elastic(faults=plan, pr=2, pc=4, parity=2)
        assert sorted(res.sim.failed) == [1, 2]
        assert res.grids == [(2, 4), (2, 3)]
        assert res.restore_steps == [4] and not res.degraded
        ref_params, _ = _serial()
        for w, r in zip(res.weights, ref_params.weights):
            np.testing.assert_allclose(w, r, rtol=1e-10, atol=1e-12)

    def test_restored_checkpoints_and_store_are_exposed(self):
        plan = FaultPlan(seed=3, crashes=(Crash(rank=1, at_step=5),))
        res = _elastic(faults=plan)
        assert [c.step for c in res.restored] == res.restore_steps
        clean = _elastic(ckpt_mode="replicate")
        assert clean.store.steps() == [0, 2, 4, 6]
        # The restored state is bit-identical to the clean oracle's
        # checkpoint at the same step.
        oracle = clean.store.get(res.restore_steps[0]).checkpoint
        for a, b in zip(res.restored[0].weights, oracle.weights):
            assert a.tobytes() == b.tobytes()


class TestCheckpointScheduleEdges:
    """``checkpoint_every`` edge cases and restore bookkeeping."""

    def test_crash_before_first_checkpoint_falls_back_to_step0(self):
        # Regression: a crash that lands before any periodic take must
        # restore the locally-held step-0 replica cleanly — in both
        # modes, bit-identically.
        plan = FaultPlan(seed=3, crashes=(Crash(rank=1, at_step=1),))
        er = _elastic(faults=plan, checkpoint_every=4)
        rp = _elastic(faults=plan, checkpoint_every=4, ckpt_mode="replicate")
        assert er.restore_steps == rp.restore_steps == [0]
        assert not er.degraded  # the step-0 replica IS the newest state
        for a, b in zip(er.weights, rp.weights):
            assert a.tobytes() == b.tobytes()
        ref_params, _ = _serial()
        for w, r in zip(er.weights, ref_params.weights):
            np.testing.assert_allclose(w, r, rtol=1e-10, atol=1e-12)

    def test_checkpoint_every_one(self):
        # A take at every step: the local erasure encode survives the
        # crash step itself, so recovery resumes from the crash step.
        plan = FaultPlan(seed=3, crashes=(Crash(rank=1, at_step=5),))
        res = _elastic(faults=plan, checkpoint_every=1)
        assert res.restore_steps == [5] and not res.degraded
        ref_params, _ = _serial()
        for w, r in zip(res.weights, ref_params.weights):
            np.testing.assert_allclose(w, r, rtol=1e-10, atol=1e-12)

    def test_checkpoint_every_beyond_steps(self):
        plan = FaultPlan(seed=3, crashes=(Crash(rank=1, at_step=5),))
        res = _elastic(faults=plan, checkpoint_every=STEPS + 5)
        assert res.restore_steps == [0]
        ref_params, _ = _serial()
        for w, r in zip(res.weights, ref_params.weights):
            np.testing.assert_allclose(w, r, rtol=1e-10, atol=1e-12)

    def test_restore_bookkeeping_lengths_agree(self):
        plan = FaultPlan(
            seed=3, crashes=(Crash(rank=1, at_step=3), Crash(rank=2, at_step=6))
        )
        res = _elastic(faults=plan)
        assert len(res.restore_steps) == len(res.grids) - 1 == len(res.restored)
        assert set(res.degraded_steps) <= set(res.restore_steps)


class TestReplanGrid:
    def test_uses_all_survivors(self):
        for p in (1, 2, 3, 4, 6):
            pr, pc = replan_grid(p, DIMS, BATCH, cori_knl())
            assert pr * pc == p
            assert pr <= min(DIMS[1:]) and pc <= BATCH

    def test_infeasible_counts_raise(self):
        with pytest.raises(ConfigurationError):
            replan_grid(7, (4, 3, 3), 2, cori_knl())  # 7x1 and 1x7 both infeasible

    def test_checkpoint_copy_is_deep(self):
        ck = Checkpoint(0, [np.zeros(3)], [np.ones(3)], (1.0,))
        cp = ck.copy()
        cp.weights[0][:] = 9.0
        assert np.all(ck.weights[0] == 0.0)
