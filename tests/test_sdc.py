"""Silent-data-corruption defense: injection, ABFT guards, recovery.

The headline guarantee under test: under any *single* injected bit flip
per generation, guarded training either converges **bit-identically**
to the clean run or fails loudly — corruption never escapes silently.
The unguarded runs are the negative control showing the threat is real.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.diff import diff_records
from repro.analysis.record import RUN_RECORD_SCHEMA, RunRecord
from repro.dist.abft import (
    SDCGuard,
    block_checksums,
    correct_element,
    locate_corruption,
    make_guard,
)
from repro.dist.train import MLPParams, distributed_mlp_train, mlp_run_record
from repro.errors import (
    ConfigurationError,
    RankFailedError,
    SDCDetectedError,
)
from repro.simmpi.engine import SimEngine
from repro.simmpi.faults import BitFlipFault, FaultPlan
from repro.simmpi.sdc import (
    SDCPolicy,
    apply_payload_flip,
    as_policy,
    flip_bit,
    flippable_arrays,
    payload_digest,
)

DIMS = (12, 10, 8)
BATCH = 8
STEPS = 3

rng = np.random.default_rng(7)
X = rng.standard_normal((DIMS[0], 4 * BATCH))
Y = rng.integers(0, DIMS[-1], 4 * BATCH)
PARAMS0 = MLPParams.init(DIMS, seed=1)


def train(plan=None, sdc=None, *, pr=2, pc=2):
    engine = SimEngine(pr * pc, None, trace=True, faults=plan)
    weights, losses, sim = distributed_mlp_train(
        PARAMS0, X, Y, pr=pr, pc=pc, batch=BATCH, steps=STEPS,
        engine=engine, sdc=sdc,
    )
    return weights, losses, engine, sim


def fault_ops(engine):
    return [e.op for e in engine.tracer.canonical() if e.op.startswith("fault.")]


def bits(weights):
    return [w.tobytes() for w in weights]


CLEAN_W, CLEAN_L, _, _ = train()


# ---------------------------------------------------------------------------
# FaultPlan round-trip and validation (injection surface)
# ---------------------------------------------------------------------------


class TestBitFlipPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=3,
            bitflips=(
                BitFlipFault(rank=1, target="matmul", layer=1, step=0,
                             gemm="bwd_dw", element=2, bit=7, repeat=2),
                BitFlipFault(rank=0, target="payload", send_index=4,
                             dest=2, element=1, bit=62),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_bitflips_survive_dict_round_trip_with_empty_plan(self):
        assert FaultPlan.from_json(FaultPlan().to_json()).bitflips == ()

    @pytest.mark.parametrize(
        "bad",
        [
            dict(rank=-1),
            dict(rank=0, bit=64),
            dict(rank=0, bit=-1),
            dict(rank=0, element=-2),
            dict(rank=0, target="alpha-particle"),
            dict(rank=0, gemm="nope"),
            dict(rank=0, layer=-1),
            dict(rank=0, repeat=0),
            dict(rank=0, target="payload"),  # needs send_index
            dict(rank=0, target="payload", send_index=-1),
            dict(rank=0, target="payload", send_index=1, repeat=2),
        ],
    )
    def test_validation_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            BitFlipFault(**bad)

    def test_policy_coercion(self):
        assert as_policy("detect").mode == "detect"
        p = SDCPolicy(mode="recompute", max_retries=5)
        assert as_policy(p) is p
        with pytest.raises(ConfigurationError):
            as_policy("fix-it-somehow")
        with pytest.raises(ConfigurationError):
            SDCPolicy(mode="correct", max_retries=-1)

    def test_make_guard_forms(self):
        assert make_guard(None) is None
        guard = SDCGuard()
        assert make_guard(guard) is guard
        assert make_guard("detect").policy.mode == "detect"


# ---------------------------------------------------------------------------
# ABFT checksum math (property tests)
# ---------------------------------------------------------------------------


class TestChecksumProperties:
    @given(
        rows=st.integers(1, 6),
        cols=st.integers(1, 6),
        element=st.integers(0, 1000),
        bit=st.integers(0, 63),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=120, deadline=None)
    def test_single_flip_is_located_and_corrected(self, rows, cols, element, bit, seed):
        block = np.random.default_rng(seed).standard_normal((rows, cols))
        clean = block.tobytes()
        row_sum, col_sum = block_checksums(block)
        flip_bit(block, element, bit)
        corruption = locate_corruption(block, row_sum, col_sum)
        assert corruption is not None and corruption.correctable
        idx = np.unravel_index(element % block.size, block.shape)
        assert (corruption.row, corruption.col) == idx
        correct_element(block, corruption)
        assert block.tobytes() == clean

    @given(
        rows=st.integers(1, 6),
        cols=st.integers(1, 6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_clean_block_never_flags(self, rows, cols, seed):
        block = np.random.default_rng(seed).standard_normal((rows, cols))
        row_sum, col_sum = block_checksums(block)
        assert locate_corruption(block, row_sum, col_sum) is None

    def test_vector_blocks_are_protected_too(self):
        vec = np.arange(5, dtype=np.float64)
        row_sum, col_sum = block_checksums(vec)
        flip_bit(vec, 3, 17)
        corruption = locate_corruption(vec, row_sum, col_sum)
        assert corruption is not None and corruption.correctable
        correct_element(vec, corruption)
        assert list(vec) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_double_corruption_detected_but_not_correctable(self):
        block = np.random.default_rng(0).standard_normal((4, 4))
        row_sum, col_sum = block_checksums(block)
        flip_bit(block, 0, 5)
        flip_bit(block, 5, 9)
        corruption = locate_corruption(block, row_sum, col_sum)
        assert corruption is not None and not corruption.correctable

    def test_flip_is_involution(self):
        arr = np.random.default_rng(1).standard_normal(6)
        before = arr.tobytes()
        flip_bit(arr, 2, 40)
        assert arr.tobytes() != before
        flip_bit(arr, 2, 40)
        assert arr.tobytes() == before


class TestPayloadGuardPrimitives:
    def test_digest_is_order_sensitive_xor_fold(self):
        a = np.arange(4, dtype=np.float64)
        assert payload_digest(a) == payload_digest(a.copy())
        b = a.copy()
        flip_bit(b, 1, 3)
        assert payload_digest(a) != payload_digest(b)

    def test_flippable_payloads(self):
        arr = np.zeros(3)
        assert flippable_arrays(arr) == [arr]
        blocks = [np.zeros(2), np.ones(3)]
        assert flippable_arrays(blocks) == blocks
        assert flippable_arrays("header") == []
        assert flippable_arrays([np.zeros(2), "x"]) == []
        assert flippable_arrays(np.zeros(3, dtype=np.int64)) == []
        assert flippable_arrays([]) == []

    def test_payload_flip_indexes_concatenated_space(self):
        blocks = [np.zeros(2), np.zeros(3)]
        flip = BitFlipFault(rank=0, target="payload", send_index=0, element=3, bit=1)
        assert apply_payload_flip(blocks, flip)
        assert blocks[0].tobytes() == np.zeros(2).tobytes()
        assert blocks[1][1] != 0.0
        # Involution: applying the same flip again restores clean bits.
        assert apply_payload_flip(blocks, flip)
        assert blocks[1].tobytes() == np.zeros(3).tobytes()


# ---------------------------------------------------------------------------
# End-to-end: the headline guarantee
# ---------------------------------------------------------------------------

MATMUL_FLIP = BitFlipFault(
    rank=1, target="matmul", layer=1, step=1, gemm="fwd", element=3, bit=52
)
PAYLOAD_FLIP = BitFlipFault(
    rank=0, target="payload", send_index=4, element=11, bit=40
)


class TestGuardedTraining:
    def test_guards_on_no_faults_bit_identical(self):
        weights, losses, engine, _ = train(sdc="correct")
        assert bits(weights) == bits(CLEAN_W)
        assert losses == CLEAN_L
        assert fault_ops(engine) == []

    @given(
        pr=st.integers(1, 3),
        pc=st.integers(1, 2),
        mode=st.sampled_from(["detect", "correct", "recompute"]),
    )
    @settings(max_examples=8, deadline=None)
    def test_guards_on_no_faults_bit_identical_any_grid(self, pr, pc, mode):
        base, _, _, _ = train(pr=pr, pc=pc)
        guarded, _, _, _ = train(pr=pr, pc=pc, sdc=mode)
        assert bits(guarded) == bits(base)

    def test_unguarded_matmul_flip_escapes_silently(self):
        plan = FaultPlan(bitflips=(MATMUL_FLIP,))
        weights, _, engine, _ = train(plan)
        assert bits(weights) != bits(CLEAN_W)
        assert fault_ops(engine) == ["fault.bitflip"]

    def test_correct_policy_repairs_matmul_flip_bit_identically(self):
        plan = FaultPlan(bitflips=(MATMUL_FLIP,))
        guard = make_guard("correct")
        weights, losses, engine, _ = train(plan, guard)
        assert bits(weights) == bits(CLEAN_W)
        assert losses == CLEAN_L
        assert fault_ops(engine) == [
            "fault.bitflip", "fault.sdc_detected", "fault.sdc_corrected"
        ]
        assert guard.monitor.snapshot() == {
            "injected": 1, "detected": 1, "corrected": 1,
            "recomputed": 0, "escaped": 0,
        }

    def test_recompute_policy_redoes_the_block(self):
        plan = FaultPlan(bitflips=(MATMUL_FLIP,))
        guard = make_guard("recompute")
        weights, _, engine, _ = train(plan, guard)
        assert bits(weights) == bits(CLEAN_W)
        assert "fault.sdc_recomputed" in fault_ops(engine)
        assert guard.monitor["recomputed"] == 1

    def test_detect_policy_fails_loudly(self):
        plan = FaultPlan(bitflips=(MATMUL_FLIP,))
        with pytest.raises(RankFailedError) as excinfo:
            train(plan, "detect")
        detections = [
            e for e in excinfo.value.failures.values()
            if isinstance(e, SDCDetectedError)
        ]
        assert len(detections) == 1
        assert detections[0].site.startswith("fwd")

    @pytest.mark.parametrize("gemm", ["fwd", "bwd_dx", "bwd_dw"])
    def test_every_gemm_site_is_guarded(self, gemm):
        plan = FaultPlan(bitflips=(
            BitFlipFault(rank=2, target="matmul", layer=1, step=0,
                         gemm=gemm, element=1, bit=60),
        ))
        weights, _, engine, _ = train(plan, "correct")
        assert bits(weights) == bits(CLEAN_W)
        assert "fault.sdc_corrected" in fault_ops(engine)

    def test_payload_flip_recovered_by_retransmission(self):
        plan = FaultPlan(bitflips=(PAYLOAD_FLIP,))
        guard = make_guard("correct")
        weights, _, engine, _ = train(plan, guard)
        assert bits(weights) == bits(CLEAN_W)
        assert fault_ops(engine) == [
            "fault.bitflip", "fault.sdc_detected", "fault.sdc_retransmit"
        ]
        assert guard.monitor["recomputed"] == 1

    def test_unguarded_payload_flip_escapes(self):
        plan = FaultPlan(bitflips=(PAYLOAD_FLIP,))
        weights, _, engine, _ = train(plan)
        assert bits(weights) != bits(CLEAN_W)
        assert fault_ops(engine) == ["fault.bitflip"]

    def test_injection_is_deterministic(self):
        plan = FaultPlan(bitflips=(MATMUL_FLIP,))
        a, la, _, _ = train(plan)
        b, lb, _, _ = train(plan)
        assert bits(a) == bits(b) and la == lb


class TestEscalation:
    def test_repeating_flip_exhausts_retries_and_escalates_to_elastic(self):
        from repro.dist.elastic import elastic_mlp_train

        # The flip re-fires on every recomputation: 1 + max_retries
        # strikes exhaust the budget, the guard raises
        # SDCUnrecoverableError (a SimulatedCrashError), and the
        # elastic machinery absorbs it like a crash: shrink, re-plan,
        # restore from checkpoint, converge.
        plan = FaultPlan(bitflips=(
            BitFlipFault(rank=1, target="matmul", layer=0, step=2,
                         gemm="fwd", element=2, bit=51, repeat=3),
        ))
        result = elastic_mlp_train(
            PARAMS0, X, Y, pr=2, pc=2, batch=BATCH, steps=6,
            checkpoint_every=2, faults=plan, trace=True,
            sdc=SDCPolicy(mode="recompute", max_retries=2),
        )
        assert result.recovered
        assert 1 in result.sim.failed
        ops = fault_ops(result.engine)
        assert ops.count("fault.sdc_recomputed") == 2
        assert "fault.sdc_escalated" in ops
        # After recovery the surviving grid retrains cleanly.
        from repro.dist.train import serial_mlp_train

        ref, _ = serial_mlp_train(PARAMS0, X, Y, batch=BATCH, steps=6)
        for got, expected in zip(result.weights, ref.weights):
            np.testing.assert_allclose(got, expected, rtol=1e-8, atol=1e-10)


# ---------------------------------------------------------------------------
# Cost model, audit, and run records
# ---------------------------------------------------------------------------


class TestGuardCostAndAudit:
    def test_guarded_audit_exact_with_digest_terms(self):
        from repro.telemetry.audit import audit_mlp_15d

        report, _ = audit_mlp_15d(DIMS, pr=2, pc=2, batch=8, steps=2, sdc="correct")
        assert report.exact
        assert report.max_latency_rel_error == 0.0
        categories = {t.category for t in report.terms}
        assert {"abft.digest_fwd", "abft.digest_dx", "abft.digest_dw"} <= categories

    def test_guarded_trace_without_sdc_flag_is_an_error(self):
        from repro.telemetry.audit import audit_events, audit_mlp_15d

        _, events = audit_mlp_15d(DIMS, pr=2, pc=2, batch=8, steps=2, sdc="correct")
        with pytest.raises(ConfigurationError, match="digest escorts"):
            audit_events(events, DIMS, pr=2, pc=2, batch=8, steps=2)

    def test_digest_volume_matches_cost_model_terms(self):
        import math

        from repro.core.costs import sdc_guard_cost_terms
        from repro.core.strategy import ProcessGrid
        from repro.machine.params import cori_knl
        from repro.nn import mlp

        pr, pc = 4, 2
        breakdown = sdc_guard_cost_terms(
            mlp(list(DIMS)), 16, ProcessGrid(pr, pc), cori_knl()
        )
        by_cat = {}
        for t in breakdown.terms:
            by_cat.setdefault(t.category, []).append(t)
        # One digest per message of the underlying collective.
        assert all(t.volume == math.ceil(math.log2(pr))
                   for t in by_cat["abft.digest_fwd"])
        assert all(t.volume == 2 * (pr - 1) for t in by_cat["abft.digest_dx"])
        assert all(t.volume == 2 * (pc - 1) for t in by_cat["abft.digest_dw"])
        # dX terms skip the first weighted layer, like Eq. 8.
        assert len(by_cat["abft.digest_dx"]) == len(by_cat["abft.digest_fwd"]) - 1
        # Checksum folds are free in alpha-beta time but counted.
        checksum = breakdown.filter("abft.checksum")
        assert checksum.total == 0.0 and checksum.volume > 0

    def test_degenerate_grids_have_no_digest_traffic(self):
        from repro.core.costs import sdc_guard_cost_terms
        from repro.core.strategy import ProcessGrid
        from repro.machine.params import cori_knl
        from repro.nn import mlp

        breakdown = sdc_guard_cost_terms(
            mlp(list(DIMS)), 16, ProcessGrid(1, 1), cori_knl()
        )
        assert breakdown.filter("abft.digest").terms == ()
        assert breakdown.filter("abft.checksum").volume > 0


class TestRunRecordV2:
    def record(self, plan=None, sdc=None):
        _, _, engine, sim = train(plan, sdc)
        return mlp_run_record(
            engine, sim, dims=DIMS, pr=2, pc=2, batch=BATCH, steps=STEPS, sdc=sdc
        )

    def test_clean_record_has_no_sdc_block(self):
        record = self.record()
        assert record.sdc == {}
        assert "sdc" not in record.to_dict()
        assert "sdc" not in record.config

    def test_guarded_record_carries_counters(self):
        record = self.record(FaultPlan(bitflips=(MATMUL_FLIP,)), "correct")
        assert record.config["sdc"] == "correct"
        assert record.sdc["injected"] == 1
        assert record.sdc["detected"] == 1
        assert record.sdc["corrected"] == 1
        assert record.sdc["escaped"] == 0
        assert record.sdc["guard_bytes"] > 0
        round_tripped = RunRecord.from_json(record.to_json())
        assert round_tripped.sdc == record.sdc

    def test_unguarded_injected_record_reports_escape(self):
        record = self.record(FaultPlan(bitflips=(MATMUL_FLIP,)))
        assert record.sdc["injected"] == 1
        assert record.sdc["escaped"] == 1
        assert record.sdc["guard_bytes"] == 0

    def test_v1_baseline_still_reads_and_diffs_clean(self):
        record = self.record()
        payload = json.loads(record.to_json())
        assert payload["schema"] == RUN_RECORD_SCHEMA
        payload["schema"] = "repro.analysis.record/v1"
        v1 = RunRecord.from_dict(payload)
        report = diff_records(v1, record)
        assert not report.regressed

    def test_unknown_schema_rejected(self):
        record = self.record()
        payload = json.loads(record.to_json())
        payload["schema"] = "repro.analysis.record/v999"
        with pytest.raises(ConfigurationError, match="schema"):
            RunRecord.from_dict(payload)

    def test_bad_sdc_block_rejected(self):
        record = self.record(FaultPlan(bitflips=(MATMUL_FLIP,)), "correct")
        payload = json.loads(record.to_json())
        payload["sdc"]["wat"] = 1
        with pytest.raises(ConfigurationError, match="unknown counter"):
            RunRecord.from_dict(payload)
        del payload["sdc"]["wat"]
        payload["sdc"]["injected"] = -1
        with pytest.raises(ConfigurationError, match="non-negative"):
            RunRecord.from_dict(payload)

    def test_guarded_config_key_differs_from_clean(self):
        # Guard state is part of comparability: a guarded record never
        # silently diffs against an unguarded baseline.
        clean = self.record()
        guarded = self.record(sdc="correct")
        assert clean.config_key != guarded.config_key


# ---------------------------------------------------------------------------
# The other trainers
# ---------------------------------------------------------------------------


class TestOtherTrainers:
    def test_summa_guarded_panels_recover(self):
        from repro.dist.summa2d import summa_matmul

        rng = np.random.default_rng(3)
        a = rng.standard_normal((8, 12))
        b = rng.standard_normal((12, 6))
        plan = FaultPlan(bitflips=(
            BitFlipFault(rank=2, target="matmul", layer=1, step=0,
                         gemm="summa", element=4, bit=55),
        ))

        def run(plan, sdc):
            engine = SimEngine(4, None, trace=True, faults=plan)
            result = engine.run(summa_matmul, a, b, pr=2, pc=2, sdc=sdc)
            blocks = result.values
            top = np.hstack([blocks[0], blocks[1]])
            bottom = np.hstack([blocks[2], blocks[3]])
            return np.vstack([top, bottom]), engine

        clean, _ = run(None, None)
        np.testing.assert_allclose(clean, a @ b, rtol=1e-12, atol=1e-12)
        guarded, engine = run(plan, "correct")
        assert guarded.tobytes() == clean.tobytes()
        assert "fault.sdc_corrected" in fault_ops(engine)
        corrupted, engine = run(plan, None)
        assert corrupted.tobytes() != clean.tobytes()
        assert fault_ops(engine) == ["fault.bitflip"]

    def test_integrated_cnn_guarded_fc_flip_bit_identical(self):
        from repro.dist.integrated import (
            CNNParams,
            IntegratedCNNConfig,
            distributed_cnn_train,
        )

        config = IntegratedCNNConfig(
            in_channels=2, height=8, width=8, conv_channels=(3,),
            conv_kernels=(3,), pool_after=(True,), fc_dims=(10, 4),
        )
        rng = np.random.default_rng(0)
        x = rng.standard_normal((16, 2, 8, 8))
        y = rng.integers(0, 4, 16)
        p0 = CNNParams.init(config, seed=1)

        def run(plan, sdc):
            engine = SimEngine(4, None, trace=True, faults=plan)
            params, _, _ = distributed_cnn_train(
                config, p0, x, y, pr=2, pc=2, batch=8, steps=2,
                engine=engine, sdc=sdc,
            )
            return params, engine

        clean, _ = run(None, None)
        plan = FaultPlan(bitflips=(
            BitFlipFault(rank=1, target="matmul", layer=1, step=1,
                         gemm="fwd", element=3, bit=52),
        ))
        guarded, engine = run(plan, "correct")
        assert bits(guarded.all_params()) == bits(clean.all_params())
        assert "fault.sdc_corrected" in fault_ops(engine)

    def test_integrated_cnn_halo_payload_flip_recovered_at_the_wire(self):
        from repro.dist.integrated import (
            CNNParams,
            IntegratedCNNConfig,
            distributed_cnn_train,
        )

        config = IntegratedCNNConfig(
            in_channels=2, height=8, width=8, conv_channels=(3,),
            conv_kernels=(3,), pool_after=(True,), fc_dims=(10, 4),
        )
        rng = np.random.default_rng(0)
        x = rng.standard_normal((16, 2, 8, 8))
        y = rng.integers(0, 4, 16)
        p0 = CNNParams.init(config, seed=1)

        def run(plan, sdc):
            engine = SimEngine(4, None, trace=True, faults=plan)
            params, _, _ = distributed_cnn_train(
                config, p0, x, y, pr=2, pc=2, batch=8, steps=2,
                engine=engine, sdc=sdc,
            )
            return params, engine

        clean, _ = run(None, None)
        plan = FaultPlan(bitflips=(
            BitFlipFault(rank=0, target="payload", send_index=2,
                         element=5, bit=44),
        ))
        guarded, engine = run(plan, "correct")
        assert bits(guarded.all_params()) == bits(clean.all_params())
        assert "fault.sdc_retransmit" in fault_ops(engine)
