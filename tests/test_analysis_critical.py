"""Tests for the dependency DAG and critical-path extractor."""

import numpy as np
import pytest

from repro.analysis import (
    attribute_event,
    build_dependency_graph,
    critical_path,
)
from repro.dist.summa2d import summa_matmul
from repro.dist.train import MLPParams, distributed_mlp_train
from repro.errors import ConfigurationError
from repro.simmpi.engine import SimEngine
from repro.simmpi.tracing import TraceEvent


def _ev(rank, op, peer, t0, t1, tag=("m",), span=()):
    return TraceEvent(
        rank=rank, op=op, peer=peer, nbytes=8,
        t_start=t0, t_end=t1, tag=tag, span=span,
    )


#: rank 0 sends twice to rank 1; rank 1 receives both (the first waited).
HAND_EVENTS = (
    _ev(0, "send", 1, 0.0, 1.0),
    _ev(0, "send", 1, 1.0, 2.0),
    _ev(1, "recv", 0, 0.0, 1.5),
    _ev(1, "recv", 0, 1.5, 2.5),
)


class TestDependencyGraph:
    def test_program_and_message_edges(self):
        g = build_dependency_graph(HAND_EVENTS)
        assert g.n_nodes == 4
        assert set(g.program_edges) == {(0, 1), (2, 3)}
        # FIFO matching per (src, dst, tag): first send -> first recv.
        assert set(g.message_edges) == {(0, 2), (1, 3)}
        assert g.n_edges == 4

    def test_waited_recv_arrival_is_its_end(self):
        g = build_dependency_graph(HAND_EVENTS)
        assert g.arrivals[(0, 2)] == 1.5
        assert g.arrivals[(1, 3)] == 2.5

    def test_tags_partition_the_matching(self):
        events = (
            _ev(0, "send", 1, 0.0, 1.0, tag=("a",)),
            _ev(0, "send", 1, 1.0, 2.0, tag=("b",)),
            _ev(1, "recv", 0, 0.0, 2.2, tag=("b",)),
        )
        g = build_dependency_graph(events)
        # The recv matches the tag-"b" send, not the earlier tag-"a" one.
        assert g.message_edges == ((1, 2),)

    def test_dropped_send_produces_no_edge(self):
        events = HAND_EVENTS + (
            TraceEvent(rank=0, op="fault.drop", peer=1, nbytes=0,
                       t_start=1.0, t_end=1.0, tag=("m",)),
        )
        g = build_dependency_graph(events)
        # The second send (t_start 1.0) was dropped: only one message edge.
        assert g.message_edges == ((0, 2),)

    def test_unmatched_send_stays_leaf(self):
        g = build_dependency_graph(HAND_EVENTS[:1])
        assert g.n_nodes == 1 and g.n_edges == 0

    def test_non_p2p_events_excluded(self):
        events = HAND_EVENTS + (
            _ev(0, "span", -1, 0.0, 3.0),
            _ev(0, "allreduce", -1, 0.0, 3.0),
        )
        assert build_dependency_graph(events).n_nodes == 4


class TestHandCriticalPath:
    def test_zero_slack_chain(self):
        cp = critical_path(HAND_EVENTS)
        assert cp.makespan_s == 2.5
        assert cp.length_s <= cp.makespan_s
        ops = [(c.event.rank, c.event.op) for c in cp.path]
        # The chain runs through both sends into the final recv.
        assert ops == [(0, "send"), (0, "send"), (1, "recv")]
        assert all(s >= 0.0 for s in cp.slack)

    def test_early_message_absorbs_slack(self):
        events = (
            _ev(0, "send", 1, 0.0, 1.0),
            _ev(1, "recv", 0, 4.0, 4.0),  # posted long after arrival
        )
        cp = critical_path(events, clocks=(1.0, 4.0))
        # The sender could slip by the mailbox wait without moving rank 1.
        assert cp.slack[0] > 0.0
        assert [c.event.rank for c in cp.path] == [1]

    def test_clocks_extend_makespan(self):
        cp = critical_path(HAND_EVENTS, clocks=(5.0, 2.5))
        assert cp.makespan_s == 5.0

    def test_no_p2p_events_rejected(self):
        with pytest.raises(ConfigurationError):
            critical_path([_ev(0, "span", -1, 0.0, 1.0)])

    def test_off_path_slack_sorted(self):
        cp = critical_path(HAND_EVENTS)
        pairs = cp.off_path_slack()
        assert all(s >= 0 for _, s in pairs)
        assert [s for _, s in pairs] == sorted(
            (s for _, s in pairs), reverse=True
        )


class TestAttribution:
    def test_phase_layer_category(self):
        e = _ev(0, "send", 1, 0.0, 1.0, span=("step[step=0]", "fwd[layer=2]",
                                              "allgather"))
        assert attribute_event(e) == ("fwd", 2, "model.allgather_fwd")

    def test_outside_phase_is_other(self):
        assert attribute_event(_ev(0, "send", 1, 0.0, 1.0)) == (
            "other", -1, "other"
        )
        e = _ev(0, "send", 1, 0.0, 1.0, span=("step", "allreduce"))
        assert attribute_event(e) == ("allreduce", -1, "other")


def _traced_mlp(pr=2, pc=2, batch=8, steps=2, dims=(12, 9, 5)):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((dims[0], 4 * batch))
    y = rng.integers(0, dims[-1], 4 * batch)
    engine = SimEngine(pr * pc, trace=True)
    _, _, sim = distributed_mlp_train(
        MLPParams.init(dims, seed=0), x, y,
        pr=pr, pc=pc, batch=batch, steps=steps, engine=engine,
    )
    return engine, sim


class TestTracedRuns:
    def test_mlp_path_bounds_makespan(self):
        engine, sim = _traced_mlp()
        cp = critical_path(engine.tracer.canonical(), clocks=sim.clocks)
        assert cp.path, "a communicating run must have a critical path"
        assert 0.0 < cp.length_s <= cp.makespan_s + 1e-15
        assert cp.makespan_s == pytest.approx(sim.time)
        assert all(s >= -1e-15 for s in cp.slack)

    def test_mlp_path_is_time_ordered_chain(self):
        engine, sim = _traced_mlp()
        cp = critical_path(engine.tracer.canonical(), clocks=sim.clocks)
        starts = [c.event.t_start for c in cp.path]
        assert starts == sorted(starts)

    def test_mlp_categories_cover_cost_model(self):
        engine, sim = _traced_mlp()
        cp = critical_path(engine.tracer.canonical(), clocks=sim.clocks)
        assert set(cp.by_category()) & {
            "model.allgather_fwd", "model.allreduce_dx",
            "batch.allreduce_dw", "other",
        }

    def test_summa_trace(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((8, 4))
        b = rng.standard_normal((4, 6))
        engine = SimEngine(4, trace=True)
        sim = engine.run(summa_matmul, a, b, 2, 2)
        cp = critical_path(engine.tracer.canonical(), clocks=sim.clocks)
        assert cp.path
        assert cp.length_s <= cp.makespan_s + 1e-15
        assert all(s >= -1e-15 for s in cp.slack)

    def test_summary_digest_keys(self):
        engine, sim = _traced_mlp()
        cp = critical_path(engine.tracer.canonical(), clocks=sim.clocks)
        digest = cp.summary()
        assert digest["events"] == len(cp.path)
        assert digest["dag_nodes"] == cp.graph.n_nodes
        assert digest["length_s"] <= digest["makespan_s"]
        assert set(digest["by_category"]) == set(cp.by_category())

    def test_to_table_limit(self):
        engine, sim = _traced_mlp()
        cp = critical_path(engine.tracer.canonical(), clocks=sim.clocks)
        assert len(cp.to_table(limit=5).rows) == 5
        assert len(cp.to_table().rows) == len(cp.path)

    def test_analysis_does_not_mutate_the_trace(self):
        engine, sim = _traced_mlp()
        before = engine.tracer.canonical()
        critical_path(before, clocks=sim.clocks)
        assert engine.tracer.canonical() == before
