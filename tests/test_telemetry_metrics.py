"""Tests for the metrics registry and its tracer-sink wiring."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simmpi.engine import SimEngine
from repro.simmpi.tracing import TraceEvent, Tracer
from repro.telemetry.metrics import NULL_REGISTRY, MetricsRegistry
from repro.telemetry.spans import span


class TestCounter:
    def test_inc_and_value_per_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("bytes")
        c.inc(10, rank=0)
        c.inc(5, rank=0)
        c.inc(7, rank=1)
        assert c.value(rank=0) == 15
        assert c.value(rank=1) == 7
        assert c.total() == 22

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("c").inc(-1)

    def test_same_name_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")


class TestGauge:
    def test_set_and_set_max(self):
        g = MetricsRegistry().gauge("clock")
        g.set(1.0, rank=0)
        g.set_max(0.5, rank=0)
        assert g.value(rank=0) == 1.0
        g.set_max(2.0, rank=0)
        assert g.value(rank=0) == 2.0
        assert g.value(rank=9) is None


class TestHistogram:
    def test_observe_tracks_stats_and_buckets(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        stats = h.stats()
        assert stats["count"] == 3
        assert stats["sum"] == 55.5
        assert stats["min"] == 0.5 and stats["max"] == 50.0
        assert stats["buckets"] == [1, 1, 1]  # <=1, <=10, overflow

    def test_empty_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("h", buckets=())


class TestDisabled:
    def test_null_registry_is_noop(self):
        c = NULL_REGISTRY.counter("n")
        c.inc(5)
        assert c.value() == 0
        NULL_REGISTRY.observe_event(
            TraceEvent(0, "send", 1, 64, 0.0, 0.0)
        )
        assert NULL_REGISTRY.counter("comm.messages").total() == 0


def _chatter(comm):
    with span("work", comm=comm):
        return comm.allreduce(np.ones(8), algorithm="ring")


class TestEngineSink:
    def test_engine_feeds_registry(self):
        reg = MetricsRegistry()
        eng = SimEngine(2, metrics=reg)
        eng.run(_chatter)
        msgs = reg.counter("comm.messages")
        # Ring allreduce on 2 ranks: 2(p-1) = 2 sends per rank.
        assert msgs.value(rank=0, op="send") == 2
        assert msgs.value(rank=1, op="send") == 2
        assert reg.counter("comm.data_bytes").value(rank=0, op="send") > 0
        assert reg.counter("span.count").value(rank=0, span="work") == 1
        assert reg.counter("coll.calls").total() == 2  # one marker per rank
        assert reg.gauge("clock.seconds").value(rank=0) > 0

    def test_metrics_without_trace_stores_no_events(self):
        reg = MetricsRegistry()
        eng = SimEngine(2, metrics=reg)
        eng.run(_chatter)
        assert eng.tracer.events == ()  # sink-only: constant memory
        assert reg.counter("comm.messages").total() > 0

    def test_to_table_flattens_series(self):
        reg = MetricsRegistry()
        eng = SimEngine(2, metrics=reg)
        eng.run(_chatter)
        table = reg.to_table()
        assert len(table) > 0
        metrics = set(table.column("metric"))
        assert "comm.messages" in metrics and "clock.seconds" in metrics


class TestTracerScalability:
    def test_max_events_ring_buffer_counts_drops(self):
        tr = Tracer(enabled=True, max_events=2)
        for i in range(5):
            tr.record(TraceEvent(0, "send", 1, i, 0.0, 0.0))
        assert len(tr.events) == 2
        assert tr.dropped == 3
        assert [e.nbytes for e in tr.events] == [3, 4]  # oldest dropped
        tr.clear()
        assert tr.events == () and tr.dropped == 0

    def test_sink_sees_dropped_events(self):
        seen = []
        tr = Tracer(enabled=True, max_events=1, sink=seen.append)
        for i in range(4):
            tr.record(TraceEvent(0, "send", 1, i, 0.0, 0.0))
        assert len(seen) == 4  # the sink streams everything
        assert len(tr.events) == 1

    def test_store_false_keeps_nothing(self):
        seen = []
        tr = Tracer(enabled=True, sink=seen.append, store=False)
        tr.record(TraceEvent(0, "send", 1, 8, 0.0, 0.0))
        assert tr.events == ()
        assert len(seen) == 1

    def test_engine_cap_passthrough(self):
        eng = SimEngine(2, trace=True, max_trace_events=4)
        eng.run(_chatter)
        assert len(eng.tracer.events) == 4
        assert eng.tracer.dropped > 0


class TestHistogramQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        assert h.quantile(0.5) is None
        assert h.quantile(0.0) is None and h.quantile(1.0) is None

    def test_single_sample_returns_that_sample(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        h.observe(3.5)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 3.5

    def test_quantiles_interpolate_within_buckets(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 2.5, 3.5):
            h.observe(v)
        q50 = h.quantile(0.5)
        assert 1.0 <= q50 <= 2.5
        assert h.quantile(0.0) == 0.5  # clamped to observed min
        assert h.quantile(1.0) == 3.5  # clamped to observed max

    def test_out_of_range_q_rejected(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        with pytest.raises(ConfigurationError):
            h.quantile(-0.1)
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)

    def test_per_label_quantiles_are_independent(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        h.observe(0.5, rank=0)
        h.observe(50.0, rank=1)
        assert h.quantile(0.5, rank=0) == 0.5
        assert h.quantile(0.5, rank=1) == 50.0
        assert h.quantile(0.5, rank=9) is None


class TestRegistryMerge:
    def test_merge_disjoint_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("sends").inc(2, rank=0)
        b.counter("recvs").inc(3, rank=1)
        a.merge(b)
        assert a.counter("sends").value(rank=0) == 2
        assert a.counter("recvs").value(rank=1) == 3
        assert b.counter("recvs").value(rank=1) == 3  # source untouched

    def test_merge_adds_counters_and_maxes_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2, rank=0)
        b.counter("n").inc(5, rank=0)
        a.gauge("clock").set(1.0, rank=0)
        b.gauge("clock").set(3.0, rank=0)
        a.merge(b)
        assert a.counter("n").value(rank=0) == 7
        assert a.gauge("clock").value(rank=0) == 3.0

    def test_merge_combines_histogram_cells(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        ha = a.histogram("lat", buckets=(1.0, 10.0))
        hb = b.histogram("lat", buckets=(1.0, 10.0))
        ha.observe(0.5)
        hb.observe(5.0)
        hb.observe(50.0)
        a.merge(b)
        stats = ha.stats()
        assert stats["count"] == 3
        assert stats["min"] == 0.5 and stats["max"] == 50.0
        assert stats["buckets"] == [1, 1, 1]

    def test_merge_kind_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_merge_bucket_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,))
        b.histogram("h", buckets=(2.0,))
        b.histogram("h", buckets=(2.0,)).observe(1.0)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_merged_histogram_deep_copied(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.histogram("lat", buckets=(1.0,)).observe(0.5)
        a.merge(b)
        b.histogram("lat", buckets=(1.0,)).observe(0.7)
        assert a.histogram("lat", buckets=(1.0,)).stats()["count"] == 1
        assert b.histogram("lat", buckets=(1.0,)).stats()["count"] == 2


def _nested_chatter(comm):
    with span("outer", comm=comm):
        comm.allreduce(np.ones(4), algorithm="ring")
        with span("inner", comm=comm):
            comm.allreduce(np.ones(4), algorithm="ring")
    with span("outer", comm=comm):
        pass
    return comm.rank


class TestStreamingSinkOrdering:
    def test_interleaved_spans_stream_consistently(self):
        """Per-rank event order through the sink matches the stored trace."""
        per_rank = {}

        class Recorder:
            def observe_event(self, event):
                per_rank.setdefault(event.rank, []).append(event)

        eng = SimEngine(2, trace=True, metrics=Recorder())
        eng.run(_nested_chatter)
        stored = eng.tracer.canonical()
        for rank, streamed in per_rank.items():
            kept = [e for e in stored if e.rank == rank]
            assert streamed == kept

    def test_span_counts_survive_interleaving(self):
        reg = MetricsRegistry()
        eng = SimEngine(2, metrics=reg)
        eng.run(_nested_chatter)
        # Each rank opens "outer" twice and "inner" once; spans are
        # labeled by their leaf name.
        assert reg.counter("span.count").value(rank=0, span="outer") == 2
        assert reg.counter("span.count").value(rank=0, span="inner") == 1
        assert reg.counter("span.count").value(rank=1, span="outer") == 2

    def test_heartbeats_feed_hb_metrics_not_coll_calls(self):
        from repro.simmpi.tracing import TraceEvent as TE

        reg = MetricsRegistry()
        before = reg.counter("coll.calls").total()
        reg.observe_event(TE(
            rank=1, op="hb", peer=-1, nbytes=0, t_start=1e-6, t_end=1e-6,
            tag=(("loss", 0.25), ("phase", "train"), ("step", 4)),
        ))
        assert reg.counter("hb.count").value(rank=1) == 1
        assert reg.gauge("hb.step").value(rank=1) == 4
        assert reg.gauge("hb.loss").value(rank=1) == 0.25
        assert reg.counter("coll.calls").total() == before
