"""Tests for the metrics registry and its tracer-sink wiring."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simmpi.engine import SimEngine
from repro.simmpi.tracing import TraceEvent, Tracer
from repro.telemetry.metrics import NULL_REGISTRY, MetricsRegistry
from repro.telemetry.spans import span


class TestCounter:
    def test_inc_and_value_per_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("bytes")
        c.inc(10, rank=0)
        c.inc(5, rank=0)
        c.inc(7, rank=1)
        assert c.value(rank=0) == 15
        assert c.value(rank=1) == 7
        assert c.total() == 22

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("c").inc(-1)

    def test_same_name_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")


class TestGauge:
    def test_set_and_set_max(self):
        g = MetricsRegistry().gauge("clock")
        g.set(1.0, rank=0)
        g.set_max(0.5, rank=0)
        assert g.value(rank=0) == 1.0
        g.set_max(2.0, rank=0)
        assert g.value(rank=0) == 2.0
        assert g.value(rank=9) is None


class TestHistogram:
    def test_observe_tracks_stats_and_buckets(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        stats = h.stats()
        assert stats["count"] == 3
        assert stats["sum"] == 55.5
        assert stats["min"] == 0.5 and stats["max"] == 50.0
        assert stats["buckets"] == [1, 1, 1]  # <=1, <=10, overflow

    def test_empty_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().histogram("h", buckets=())


class TestDisabled:
    def test_null_registry_is_noop(self):
        c = NULL_REGISTRY.counter("n")
        c.inc(5)
        assert c.value() == 0
        NULL_REGISTRY.observe_event(
            TraceEvent(0, "send", 1, 64, 0.0, 0.0)
        )
        assert NULL_REGISTRY.counter("comm.messages").total() == 0


def _chatter(comm):
    with span("work", comm=comm):
        return comm.allreduce(np.ones(8), algorithm="ring")


class TestEngineSink:
    def test_engine_feeds_registry(self):
        reg = MetricsRegistry()
        eng = SimEngine(2, metrics=reg)
        eng.run(_chatter)
        msgs = reg.counter("comm.messages")
        # Ring allreduce on 2 ranks: 2(p-1) = 2 sends per rank.
        assert msgs.value(rank=0, op="send") == 2
        assert msgs.value(rank=1, op="send") == 2
        assert reg.counter("comm.data_bytes").value(rank=0, op="send") > 0
        assert reg.counter("span.count").value(rank=0, span="work") == 1
        assert reg.counter("coll.calls").total() == 2  # one marker per rank
        assert reg.gauge("clock.seconds").value(rank=0) > 0

    def test_metrics_without_trace_stores_no_events(self):
        reg = MetricsRegistry()
        eng = SimEngine(2, metrics=reg)
        eng.run(_chatter)
        assert eng.tracer.events == ()  # sink-only: constant memory
        assert reg.counter("comm.messages").total() > 0

    def test_to_table_flattens_series(self):
        reg = MetricsRegistry()
        eng = SimEngine(2, metrics=reg)
        eng.run(_chatter)
        table = reg.to_table()
        assert len(table) > 0
        metrics = set(table.column("metric"))
        assert "comm.messages" in metrics and "clock.seconds" in metrics


class TestTracerScalability:
    def test_max_events_ring_buffer_counts_drops(self):
        tr = Tracer(enabled=True, max_events=2)
        for i in range(5):
            tr.record(TraceEvent(0, "send", 1, i, 0.0, 0.0))
        assert len(tr.events) == 2
        assert tr.dropped == 3
        assert [e.nbytes for e in tr.events] == [3, 4]  # oldest dropped
        tr.clear()
        assert tr.events == () and tr.dropped == 0

    def test_sink_sees_dropped_events(self):
        seen = []
        tr = Tracer(enabled=True, max_events=1, sink=seen.append)
        for i in range(4):
            tr.record(TraceEvent(0, "send", 1, i, 0.0, 0.0))
        assert len(seen) == 4  # the sink streams everything
        assert len(tr.events) == 1

    def test_store_false_keeps_nothing(self):
        seen = []
        tr = Tracer(enabled=True, sink=seen.append, store=False)
        tr.record(TraceEvent(0, "send", 1, 8, 0.0, 0.0))
        assert tr.events == ()
        assert len(seen) == 1

    def test_engine_cap_passthrough(self):
        eng = SimEngine(2, trace=True, max_trace_events=4)
        eng.run(_chatter)
        assert len(eng.tracer.events) == 4
        assert eng.tracer.dropped > 0
