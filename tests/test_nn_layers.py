"""Tests for layer specs and the Eq. 2 shape algebra (repro.nn)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.nn.conv import ConvSpec, conv_output_extent
from repro.nn.fc import FCSpec
from repro.nn.layer import ActivationSpec, DropoutSpec, FlattenSpec, InputSpec, LRNSpec, Shape3D
from repro.nn.pool import PoolSpec


class TestShape3D:
    def test_size_is_product(self):
        assert Shape3D(13, 13, 384).size == 13 * 13 * 384

    def test_flat_roundtrip(self):
        s = Shape3D(6, 6, 256)
        assert s.flattened() == Shape3D.flat(9216)
        assert s.flattened().is_flat and not s.is_flat

    @pytest.mark.parametrize("dims", [(0, 1, 1), (1, -1, 1), (1, 1, 0)])
    def test_rejects_nonpositive(self, dims):
        with pytest.raises(ShapeError):
            Shape3D(*dims)

    def test_str(self):
        assert str(Shape3D(13, 13, 384)) == "13x13x384"
        assert str(Shape3D.flat(4096)) == "4096"


class TestConvOutputExtent:
    def test_alexnet_conv1(self):
        assert conv_output_extent(227, 11, 4, 0) == 55

    def test_same_padding_stride1(self):
        assert conv_output_extent(13, 3, 1, 1) == 13

    def test_kernel_too_large(self):
        with pytest.raises(ShapeError):
            conv_output_extent(5, 7, 1, 0)

    @given(
        extent=st.integers(1, 64),
        kernel=st.integers(1, 7),
        stride=st.integers(1, 4),
    )
    def test_same_padding_matches_paper_ceiling(self, extent, kernel, stride):
        """Eq. 2: 'with proper padding' the output is ceil(X/s)."""
        if kernel % 2 == 0:
            return
        pad = kernel // 2
        if kernel > extent + 2 * pad:
            return
        out = conv_output_extent(extent, kernel, stride, pad)
        assert out == -(-extent // stride)  # ceil division


class TestConvSpec:
    def test_eq2_param_count(self):
        """|W| = kh * kw * XC * YC for ungrouped convolutions."""
        spec = ConvSpec.square(384, 3, padding=1)
        assert spec.param_count(Shape3D(13, 13, 256)) == 3 * 3 * 256 * 384

    def test_grouped_param_count(self):
        spec = ConvSpec.square(256, 5, padding=2, groups=2)
        assert spec.param_count(Shape3D(27, 27, 96)) == 5 * 5 * 48 * 256

    def test_eq2_output_shape(self):
        spec = ConvSpec.square(96, 11, stride=4)
        assert spec.output_shape(Shape3D(227, 227, 3)) == Shape3D(55, 55, 96)

    def test_flops_counts_two_per_mac(self):
        spec = ConvSpec.square(4, 3)
        out = spec.output_shape(Shape3D(5, 5, 2))
        assert spec.flops(Shape3D(5, 5, 2)) == 2 * 3 * 3 * 2 * out.size

    def test_halo_properties(self):
        assert ConvSpec.square(64, 3).halo_rows == 1
        assert ConvSpec.square(64, 5).halo_cols == 2
        assert ConvSpec.square(64, 1).is_pointwise
        assert not ConvSpec.square(64, 3).is_pointwise

    def test_channels_not_divisible_by_groups(self):
        spec = ConvSpec.square(64, 3, groups=2)
        with pytest.raises(ShapeError):
            spec.output_shape(Shape3D(8, 8, 3))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(out_channels=0, kernel_h=3, kernel_w=3),
            dict(out_channels=8, kernel_h=0, kernel_w=3),
            dict(out_channels=8, kernel_h=3, kernel_w=3, stride=0),
            dict(out_channels=8, kernel_h=3, kernel_w=3, padding=-1),
            dict(out_channels=8, kernel_h=3, kernel_w=3, groups=3),
        ],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            ConvSpec(**kwargs)


class TestFCSpec:
    def test_param_count_is_product(self):
        assert FCSpec(4096).param_count(Shape3D.flat(9216)) == 4096 * 9216

    def test_flattens_spatial_input(self):
        spec = FCSpec(10)
        assert spec.param_count(Shape3D(6, 6, 256)) == 10 * 9216
        assert spec.output_shape(Shape3D(6, 6, 256)) == Shape3D.flat(10)

    def test_flops(self):
        assert FCSpec(100).flops(Shape3D.flat(50)) == 2 * 100 * 50

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            FCSpec(0)


class TestPoolSpec:
    def test_alexnet_pools(self):
        pool = PoolSpec(kernel=3, stride=2)
        assert pool.output_shape(Shape3D(55, 55, 96)) == Shape3D(27, 27, 96)
        assert pool.output_shape(Shape3D(27, 27, 256)) == Shape3D(13, 13, 256)

    def test_no_params(self):
        assert PoolSpec(kernel=2, stride=2).param_count(Shape3D(8, 8, 4)) == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kernel=0, stride=2),
            dict(kernel=2, stride=0),
            dict(kernel=2, stride=2, padding=-1),
            dict(kernel=2, stride=2, mode="median"),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            PoolSpec(**kwargs)


class TestParameterFreeSpecs:
    @pytest.mark.parametrize(
        "spec",
        [ActivationSpec(), DropoutSpec(0.5), LRNSpec(), FlattenSpec()],
    )
    def test_no_params(self, spec):
        assert spec.param_count(Shape3D(8, 8, 4)) == 0
        assert not spec.has_weights

    def test_shape_preserving(self):
        s = Shape3D(8, 8, 4)
        assert ActivationSpec().output_shape(s) == s
        assert DropoutSpec().output_shape(s) == s
        assert LRNSpec().output_shape(s) == s
        assert FlattenSpec().output_shape(s) == s.flattened()

    def test_activation_validation(self):
        with pytest.raises(ConfigurationError):
            ActivationSpec("swish")

    def test_dropout_validation(self):
        with pytest.raises(ConfigurationError):
            DropoutSpec(1.0)

    def test_input_spec_anchors_shape(self):
        spec = InputSpec(Shape3D(4, 4, 3))
        assert spec.output_shape(Shape3D(4, 4, 3)) == Shape3D(4, 4, 3)
        with pytest.raises(ShapeError):
            spec.output_shape(Shape3D(5, 4, 3))
