"""Tests for iteration execution plans (repro.core.plan)."""

import pytest

from repro.core.costs import integrated_cost
from repro.core.plan import build_iteration_plan
from repro.core.strategy import ProcessGrid, Strategy
from repro.errors import StrategyError
from repro.machine.params import cori_knl
from repro.nn import alexnet

NET = alexnet()
M = cori_knl()


class TestPlanTotals:
    @pytest.mark.parametrize(
        "family,grid",
        [
            (Strategy.same_grid_model, ProcessGrid(8, 64)),
            (Strategy.same_grid_model, ProcessGrid(1, 64)),
            (Strategy.same_grid_model, ProcessGrid(8, 1)),
            (Strategy.conv_batch_fc_model, ProcessGrid(16, 32)),
            (Strategy.conv_domain_fc_model, ProcessGrid(4, 128)),
        ],
    )
    def test_plan_time_equals_cost_model(self, family, grid):
        """The plan is the cost, scheduled: totals must agree exactly."""
        strategy = family(NET, grid)
        plan = build_iteration_plan(NET, 2048, strategy, M)
        cost = integrated_cost(NET, 2048, strategy, M)
        assert plan.total_time == pytest.approx(cost.total, rel=1e-12)

    def test_blocking_time_is_the_forward_allgathers(self):
        strategy = Strategy.same_grid_model(NET, ProcessGrid(8, 64))
        plan = build_iteration_plan(NET, 2048, strategy, M)
        cost = integrated_cost(NET, 2048, strategy, M)
        assert plan.blocking_time == pytest.approx(
            cost.filter("model.allgather_fwd").total
        )


class TestPlanStructure:
    def test_forward_then_backward_order(self):
        strategy = Strategy.same_grid_model(NET, ProcessGrid(4, 16))
        plan = build_iteration_plan(NET, 2048, strategy, M)
        phases = [s.phase for s in plan.steps]
        assert phases == sorted(phases, key=lambda p: 0 if p == "forward" else 1)
        orders = [s.order for s in plan.steps]
        assert orders == sorted(orders)

    def test_forward_layers_in_order_backward_reversed(self):
        strategy = Strategy.same_grid_model(NET, ProcessGrid(4, 16))
        plan = build_iteration_plan(NET, 2048, strategy, M)
        fwd_layers = [s.layer for s in plan.phase_steps("forward")]
        assert fwd_layers == [w.name for w in NET.weighted_layers]
        bwd_dw = [s.layer for s in plan.phase_steps("backward") if "dW" in s.operation]
        assert bwd_dw == [w.name for w in reversed(NET.weighted_layers)]

    def test_pure_batch_plan_has_only_backward_dw(self):
        strategy = Strategy.same_grid_model(NET, ProcessGrid(1, 64))
        plan = build_iteration_plan(NET, 2048, strategy, M)
        assert plan.phase_steps("forward") == ()
        assert all("dW" in s.operation for s in plan.steps)
        assert all(s.group == "Pc" for s in plan.steps)

    def test_domain_halos_are_overlappable_pairwise(self):
        strategy = Strategy.conv_domain_fc_model(NET, ProcessGrid(4, 128))
        plan = build_iteration_plan(NET, 2048, strategy, M)
        halos = [s for s in plan.steps if "halo" in s.operation]
        assert halos
        assert all(s.overlappable and s.group == "neighbours" for s in halos)

    def test_first_layer_has_no_dx_step(self):
        strategy = Strategy.same_grid_model(NET, ProcessGrid(4, 16))
        plan = build_iteration_plan(NET, 2048, strategy, M)
        conv1_bwd = [
            s for s in plan.phase_steps("backward")
            if s.layer == "conv1" and "dX" in s.operation
        ]
        assert conv1_bwd == []

    def test_table_rendering(self):
        strategy = Strategy.conv_batch_fc_model(NET, ProcessGrid(16, 32))
        plan = build_iteration_plan(NET, 2048, strategy, M)
        text = plan.to_table().to_ascii()
        assert "allreduce(dW)" in text and "allgather(Y)" in text

    def test_infeasible_batch_placement_rejected(self):
        strategy = Strategy.conv_batch_fc_model(NET, ProcessGrid(2, 512))
        with pytest.raises(StrategyError):
            build_iteration_plan(NET, 512, strategy, M)
