"""Tests for process grids and strategies (repro.core.strategy)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.strategy import Placement, ProcessGrid, Strategy
from repro.errors import ConfigurationError, StrategyError
from repro.nn import alexnet, mlp


NET = alexnet()


class TestProcessGrid:
    def test_p_is_product(self):
        assert ProcessGrid(16, 32).p == 512

    def test_pure_flags(self):
        assert ProcessGrid.pure_batch(8).is_pure_batch
        assert ProcessGrid.pure_model(8).is_pure_model
        assert not ProcessGrid(2, 4).is_pure_batch

    def test_factorizations_of_12(self):
        grids = ProcessGrid.factorizations(12)
        assert [(g.pr, g.pc) for g in grids] == [
            (1, 12), (2, 6), (3, 4), (4, 3), (6, 2), (12, 1)
        ]

    def test_factorizations_of_prime(self):
        assert [(g.pr, g.pc) for g in ProcessGrid.factorizations(7)] == [(1, 7), (7, 1)]

    @given(p=st.integers(1, 500))
    def test_factorizations_cover_all_divisor_pairs(self, p):
        grids = ProcessGrid.factorizations(p)
        assert all(g.p == p for g in grids)
        divisors = [d for d in range(1, p + 1) if p % d == 0]
        assert len(grids) == len(divisors)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            ProcessGrid(0, 4)
        with pytest.raises(ConfigurationError):
            ProcessGrid.factorizations(0)

    def test_str(self):
        assert str(ProcessGrid(16, 32)) == "16x32"


class TestStrategy:
    def test_uniform_covers_all_layers(self):
        s = Strategy.same_grid_model(NET, ProcessGrid(2, 4))
        assert len(s.placements) == NET.num_weighted
        assert all(p is Placement.MODEL for p in s.placements)

    def test_conv_batch_fc_model(self):
        s = Strategy.conv_batch_fc_model(NET, ProcessGrid(2, 4))
        kinds = [w.kind for w in NET.weighted_layers]
        for kind, pl in zip(kinds, s.placements):
            assert pl is (Placement.BATCH if kind == "conv" else Placement.MODEL)

    def test_conv_domain_fc_model(self):
        s = Strategy.conv_domain_fc_model(NET, ProcessGrid(2, 4))
        assert s.uses_domain
        assert len(s.domain_layer_indices) == 5
        assert len(s.model_layer_indices) == 3

    def test_from_layer_sets(self):
        s = Strategy.from_layer_sets(
            NET,
            ProcessGrid(2, 4),
            model_layers=["fc6", "fc7", "fc8"],
            domain_layers=["conv1", "conv2"],
        )
        assert s.batch_layer_indices == (2, 3, 4)  # conv3..conv5

    def test_from_layer_sets_rejects_overlap(self):
        with pytest.raises(StrategyError):
            Strategy.from_layer_sets(
                NET, ProcessGrid(2, 2), model_layers=["fc6"], domain_layers=["fc6"]
            )

    def test_from_layer_sets_rejects_unknown(self):
        with pytest.raises(StrategyError):
            Strategy.from_layer_sets(NET, ProcessGrid(2, 2), model_layers=["fc99"])

    def test_check_matches(self):
        s = Strategy.same_grid_model(NET, ProcessGrid(2, 2))
        s.check_matches(NET)
        other = mlp([10, 5, 2])
        with pytest.raises(StrategyError):
            s.check_matches(other)

    def test_empty_placements_rejected(self):
        with pytest.raises(StrategyError):
            Strategy(ProcessGrid(1, 1), ())

    def test_non_placement_rejected(self):
        with pytest.raises(StrategyError):
            Strategy(ProcessGrid(1, 1), ("model",))  # type: ignore[arg-type]

    def test_describe(self):
        s = Strategy.conv_batch_fc_model(NET, ProcessGrid(16, 32))
        text = s.describe()
        assert "16x32" in text and "batch:5" in text and "model:3" in text
