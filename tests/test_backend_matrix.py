"""Differential backend test matrix: thread vs event scheduler.

The discrete-event backend (:mod:`repro.simmpi.events`) promises
*bit-identical* observable behavior to the threaded backend for any
deterministic rank program: per-rank return values, final virtual
clocks, and the canonical trace.  This matrix runs the same programs —
collectives, all four trainers, and the fault/SDC/checkpoint gauntlets
— under ``backend="thread"`` and ``backend="event"`` and asserts exact
equality on all three surfaces.

Out of contract (and out of this matrix): :meth:`Request.test` probe
*results*, which are scheduling-dependent even between two threaded
runs, and tracer drop counts under ``max_events`` caps (the drop set
depends on global interleaving).
"""

import numpy as np
import pytest

from repro.data.synthetic import synthetic_classification
from repro.dist.elastic import elastic_mlp_train
from repro.data.synthetic import synthetic_images
from repro.dist.integrated import (
    CNNParams,
    IntegratedCNNConfig,
    distributed_cnn_train,
)
from repro.dist.summa2d import summa_matmul
from repro.dist.train import MLPParams, distributed_mlp_train
from repro.errors import DeadlockError, RankFailedError
from repro.simmpi import collops
from repro.simmpi.engine import SimEngine
from repro.simmpi.faults import (
    BitFlipFault,
    Cascade,
    Crash,
    FaultPlan,
    LinkFault,
    MessageDrop,
    Straggler,
    TransientFault,
)

BACKENDS = ("thread", "event")


def assert_same(a, b, path="result"):
    """Recursive, array-aware bit-exact equality."""
    assert type(a) is type(b), f"{path}: {type(a)} vs {type(b)}"
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype and a.shape == b.shape, path
        assert a.tobytes() == b.tobytes(), f"{path}: array bits differ"
    elif isinstance(a, dict):
        assert a.keys() == b.keys(), path
        for k in a:
            assert_same(a[k], b[k], f"{path}[{k!r}]")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            assert_same(x, y, f"{path}[{i}]")
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def run_both(size, prog, *args, engine_kwargs=None, **kwargs):
    """Run ``prog`` under both backends; assert full observable parity.

    Returns the two engines for additional backend-specific assertions.
    """
    engine_kwargs = dict(engine_kwargs or {})
    engine_kwargs.setdefault("trace", True)
    results, engines = {}, {}
    for backend in BACKENDS:
        engine = SimEngine(size, backend=backend, **engine_kwargs)
        results[backend] = engine.run(prog, *args, **kwargs)
        engines[backend] = engine
    rt, re_ = results["thread"], results["event"]
    assert_same(list(rt.values), list(re_.values), "values")
    assert rt.clocks == re_.clocks, "final virtual clocks differ"
    assert rt.failed == re_.failed, "failed-rank sets differ"
    ct = engines["thread"].tracer.canonical()
    ce = engines["event"].tracer.canonical()
    assert len(ct) == len(ce), f"trace lengths differ: {len(ct)} vs {len(ce)}"
    for i, (et, ee) in enumerate(zip(ct, ce)):
        assert et == ee, f"canonical trace diverges at event {i}: {et} vs {ee}"
    return engines["thread"], engines["event"]


def run_both_trainer(trainer, size, *, engine_kwargs=None, **kwargs):
    """Differential run of a trainer that accepts ``engine=``."""
    engine_kwargs = dict(engine_kwargs or {})
    engine_kwargs.setdefault("trace", True)
    out, engines = {}, {}
    for backend in BACKENDS:
        engine = SimEngine(size, backend=backend, **engine_kwargs)
        out[backend] = trainer(engine=engine, **kwargs)
        engines[backend] = engine
    ct = engines["thread"].tracer.canonical()
    ce = engines["event"].tracer.canonical()
    assert len(ct) == len(ce)
    assert ct == ce, "canonical traces diverge"
    return out["thread"], out["event"]


# ---------------------------------------------------------------------------
# collectives and point-to-point primitives
# ---------------------------------------------------------------------------


def _collective_zoo(comm):
    rank = comm.rank
    out = {}
    vec = np.arange(6, dtype=np.float64) * (rank + 1)
    for alg in ("ring", "rd", "rabenseifner", "naive"):
        out[f"allreduce.{alg}"] = collops.allreduce(comm, vec, algorithm=alg)
    for alg in ("bruck", "ring", "naive"):
        out[f"allgather.{alg}"] = collops.allgather_blocks(
            comm, np.full(3, float(rank)), algorithm=alg
        )
    out["reduce_scatter"] = collops.reduce_scatter_ring(
        comm, np.arange(2 * comm.size, dtype=np.float64) + rank
    )
    out["bcast"] = collops.bcast_binomial(comm, {"root": 7, "rank0": True}, root=0)
    out["gather"] = comm.gather((rank, rank * rank), root=comm.size - 1)
    out["scatter"] = comm.scatter(
        [np.full(2, float(i)) for i in range(comm.size)] if rank == 0 else None
    )
    out["reduce"] = comm.reduce(np.ones(4) * rank, root=0)
    comm.barrier()
    out["sendrecv"] = comm.sendrecv(
        rank, dest=(rank + 1) % comm.size, source=(rank - 1) % comm.size
    )
    # nonblocking: values must match; probe results are out of contract.
    req = comm.irecv(source=(rank - 1) % comm.size, tag=9)
    comm.send(np.float64(rank) / 3.0, dest=(rank + 1) % comm.size, tag=9)
    out["irecv"] = req.wait()
    return out


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
def test_collectives_bit_identical(size):
    run_both(size, _collective_zoo)


@pytest.mark.parametrize("size", [4, 6])
def test_split_and_subcommunicators(size):
    def prog(comm):
        rank = comm.rank
        row = comm.split(color=rank % 2, key=rank)
        a = row.allreduce(np.arange(4, dtype=np.float64) + rank)
        col = comm.split(color=rank // 2)
        b = col.allgather_object(rank * 10)
        return a, b, (row.rank, row.size, col.rank, col.size)

    run_both(size, prog)


def test_halo_exchange(size=5):
    def prog(comm):
        local = np.full((3, 4), float(comm.rank))
        return collops.halo_exchange_1d(comm, local[:1], local[-1:])

    run_both(size, prog)


# ---------------------------------------------------------------------------
# the four trainers
# ---------------------------------------------------------------------------

X, Y = synthetic_classification(10, 48, 5, seed=7)


@pytest.mark.parametrize("pr,pc", [(2, 2), (3, 2), (1, 4)])
def test_mlp_trainer_differential(pr, pc):
    params0 = MLPParams.init((10, 9, 5), seed=1)
    (wt, lt, st), (we, le, se) = run_both_trainer(
        lambda engine: distributed_mlp_train(
            params0, X, Y, pr=pr, pc=pc, batch=12, steps=3, engine=engine
        ),
        pr * pc,
    )
    assert_same(wt, we, "weights")
    assert lt == le
    assert st.clocks == se.clocks


def test_mlp_trainer_accepts_backend_string():
    params0 = MLPParams.init((10, 9, 5), seed=1)
    wt, lt, _ = distributed_mlp_train(
        params0, X, Y, pr=2, pc=2, batch=12, steps=2, engine="event"
    )
    we, le, _ = distributed_mlp_train(
        params0, X, Y, pr=2, pc=2, batch=12, steps=2, engine=None
    )
    assert lt == le
    assert_same(wt, we, "weights")


def test_cnn_trainer_differential():
    config = IntegratedCNNConfig(
        in_channels=2, height=8, width=8, conv_channels=(4,),
        conv_kernels=(3,), pool_after=(True,), fc_dims=(12, 5),
    )
    params0 = CNNParams.init(config, seed=3)
    xc, yc = synthetic_images(16, 2, 8, 8, 5, seed=5)
    (pt, lt, st), (pe, le, se) = run_both_trainer(
        lambda engine: distributed_cnn_train(
            config, params0, xc, yc, pr=2, pc=2, batch=8, steps=2, engine=engine
        ),
        4,
    )
    assert lt == le
    assert st.clocks == se.clocks
    assert_same(pt.conv_weights, pe.conv_weights, "conv")
    assert_same(pt.fc_weights, pe.fc_weights, "fc")


def test_elastic_trainer_differential_clean():
    params0 = MLPParams.init((10, 8, 5), seed=2)
    rt, re_ = {}, {}
    for backend in BACKENDS:
        res = elastic_mlp_train(
            params0, X, Y, pr=2, pc=2, batch=12, steps=4,
            checkpoint_every=2, trace=True, engine=backend,
        )
        rt[backend] = res
    a, b = rt["thread"], rt["event"]
    assert a.losses == b.losses
    assert_same(a.weights, b.weights, "weights")
    assert a.sim.clocks == b.sim.clocks
    assert a.sim.failed == b.sim.failed
    assert a.engine.tracer.canonical() == b.engine.tracer.canonical()


@pytest.mark.parametrize("pr,pc", [(2, 2), (2, 3)])
def test_summa_differential(pr, pc):
    m, n = 8, 6
    k = 2 * int(np.lcm(pr, pc))
    rng = np.random.default_rng(13)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))

    def prog(comm):
        return summa_matmul(comm, a, b, pr, pc)

    run_both(pr * pc, prog)


# ---------------------------------------------------------------------------
# fault, SDC, and checkpoint gauntlets
# ---------------------------------------------------------------------------


def test_fault_plan_differential():
    """Transients, drops, link faults, and stragglers: same retries, same clocks."""
    plan = FaultPlan(
        seed=21,
        transients=(TransientFault(rank=1, dest=2, send_index=1, attempts=2),),
        links=(LinkFault(src=2, dst=3, latency_factor=8.0,
                         bandwidth_factor=4.0, t_start=0.0, t_end=1.0),),
        stragglers=(Straggler(rank=3, factor=2.5, jitter=0.1),),
    )

    def prog(comm):
        acc = []
        for round_ in range(3):
            acc.append(comm.allreduce(np.ones(8) * (comm.rank + round_)))
        comm.barrier()
        return acc

    tt, te = run_both(4, prog, engine_kwargs={"faults": plan})
    # fault events themselves are part of the canonical trace parity above;
    # double-check the retry/drop machinery actually fired.
    assert tt.tracer.faults()
    assert te.tracer.faults()


def test_message_drop_fails_identically():
    """An unsupervised drop deadlocks the receiver: same diagnosis both ways."""
    plan = FaultPlan(seed=2, drops=(MessageDrop(rank=0, dest=1, send_index=0),))

    def prog(comm):
        comm.barrier()
        return comm.rank

    outcomes = {}
    for backend in BACKENDS:
        engine = SimEngine(2, backend=backend, faults=plan, timeout=0.5)
        with pytest.raises(RankFailedError) as exc_info:
            engine.run(prog)
        outcomes[backend] = sorted(
            (r, type(e).__name__) for r, e in exc_info.value.failures.items()
        )
    assert outcomes["thread"] == outcomes["event"]


def test_crash_shrink_recover_differential():
    """Supervised crash + cascade + checkpoint restore, both checkpoint modes."""
    params0 = MLPParams.init((10, 8, 5), seed=4)
    for mode in ("erasure", "replicate"):
        plan = FaultPlan(
            seed=9,
            crashes=(Crash(rank=1, at_step=2),),
            cascades=(Cascade(rank=2, at_recovery=1),),
        )
        res = {}
        for backend in BACKENDS:
            res[backend] = elastic_mlp_train(
                params0, X, Y, pr=2, pc=2, batch=12, steps=6,
                checkpoint_every=2, ckpt_mode=mode, faults=plan,
                trace=True, engine=backend,
            )
        a, b = res["thread"], res["event"]
        assert a.losses == b.losses, mode
        assert_same(a.weights, b.weights, f"weights[{mode}]")
        assert a.sim.failed == b.sim.failed
        assert a.sim.clocks == b.sim.clocks
        assert a.restore_steps == b.restore_steps
        assert a.grids == b.grids
        assert a.engine.tracer.canonical() == b.engine.tracer.canonical()


def test_sdc_gauntlet_differential():
    """Injected bit flips under ABFT guards: identical detection + repair."""
    params0 = MLPParams.init((10, 8, 5), seed=6)
    for policy in ("correct", "recompute"):
        plan = FaultPlan(
            seed=3,
            bitflips=(BitFlipFault(rank=1, layer=0, step=1, gemm="fwd",
                                   element=2, bit=12),),
        )
        out = {}
        for backend in BACKENDS:
            engine = SimEngine(4, backend=backend, trace=True, faults=plan)
            w, losses, sim = distributed_mlp_train(
                params0, X, Y, pr=2, pc=2, batch=12, steps=3,
                engine=engine, sdc=policy,
            )
            out[backend] = (w, losses, sim, engine)
        wt, lt, st, et = out["thread"]
        we, le, se, ee = out["event"]
        assert lt == le, policy
        assert_same(wt, we, f"weights[{policy}]")
        assert st.clocks == se.clocks
        assert et.tracer.canonical() == ee.tracer.canonical()
        assert et.tracer.faults("bitflip") and ee.tracer.faults("bitflip")


def test_deadlock_parity():
    """Both backends diagnose the same deadlock with the same message."""

    def prog(comm):
        if comm.rank == 0:
            comm.recv(source=1, tag=99)  # nobody ever sends this

    errs = {}
    for backend in BACKENDS:
        engine = SimEngine(2, backend=backend, timeout=0.5)
        with pytest.raises(RankFailedError) as exc_info:
            engine.run(prog)
        (err,) = exc_info.value.failures.values()
        assert isinstance(err, DeadlockError), backend
        errs[backend] = str(err)
    assert errs["thread"] == errs["event"]


def test_engine_reuse_differential():
    """Back-to-back runs on one engine stay bit-identical across backends."""
    def prog(comm, shift):
        return comm.allreduce(np.arange(5, dtype=np.float64) + comm.rank + shift)

    engines = {b: SimEngine(3, backend=b, trace=True) for b in BACKENDS}
    for shift in (0, 1):
        rt = engines["thread"].run(prog, shift)
        re_ = engines["event"].run(prog, shift)
        assert_same(list(rt.values), list(re_.values), f"run{shift}")
        assert rt.clocks == re_.clocks
    assert engines["thread"].tracer.canonical() == engines["event"].tracer.canonical()
