"""Tests for the markdown/HTML analysis report renderers."""

import numpy as np
import pytest

from repro.analysis import critical_path, rank_accounting
from repro.dist.train import MLPParams, distributed_mlp_train
from repro.errors import ConfigurationError
from repro.report.analysis import (
    analysis_html,
    analysis_markdown,
    critical_path_markdown,
    render_imbalance_heatmap,
)
from repro.simmpi.engine import SimEngine


def _analysed(pr=2, pc=2, batch=8, steps=2, dims=(12, 9, 5)):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((dims[0], 4 * batch))
    y = rng.integers(0, dims[-1], 4 * batch)
    engine = SimEngine(pr * pc, trace=True)
    _, _, sim = distributed_mlp_train(
        MLPParams.init(dims, seed=0), x, y,
        pr=pr, pc=pc, batch=batch, steps=steps, engine=engine,
    )
    events = engine.tracer.canonical()
    return (
        rank_accounting(events, clocks=sim.clocks),
        critical_path(events, clocks=sim.clocks),
    )


ACCOUNTING, CP = _analysed()


class TestHeatmap:
    def test_grid_rows_and_straggler_brackets(self):
        out = render_imbalance_heatmap(ACCOUNTING, 2, 2)
        lines = out.splitlines()
        assert lines[1].startswith("row 0 |")
        assert lines[2].startswith("row 1 |")
        assert f"[{ACCOUNTING.straggler_rank}:" in out

    def test_every_rank_appears(self):
        out = render_imbalance_heatmap(ACCOUNTING, 2, 2)
        for rank in range(4):
            assert f"{rank}:" in out

    def test_absent_rank_marked(self):
        out = render_imbalance_heatmap(ACCOUNTING, 2, 3)
        assert "(absent)" in out

    def test_bad_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            render_imbalance_heatmap(ACCOUNTING, 0, 2)
        with pytest.raises(ConfigurationError):
            render_imbalance_heatmap(ACCOUNTING, 1, 2)  # 4 ranks, 2 cells


class TestCriticalPathMarkdown:
    def test_table_and_headline(self):
        out = critical_path_markdown(CP)
        assert "## Critical path" in out
        assert "| hop | rank | op |" in out
        assert str(CP.graph.n_nodes) in out

    def test_limit_elides_tail(self):
        out = critical_path_markdown(CP, limit=3)
        assert f"{len(CP.path) - 3} more hops" in out
        full = critical_path_markdown(CP, limit=None)
        assert "more hops" not in full

    def test_dropped_warning(self):
        import dataclasses

        lossy = dataclasses.replace(CP, dropped=9)
        assert "9 events were dropped" in critical_path_markdown(lossy)
        assert "dropped" not in critical_path_markdown(CP)


class TestFullDocuments:
    def test_markdown_sections(self):
        out = analysis_markdown(ACCOUNTING, CP, pr=2, pc=2, title="My run")
        assert out.startswith("# My run")
        assert "## Load imbalance" in out
        assert "## Critical path" in out
        assert "straggler" in out

    def test_html_is_self_contained(self):
        out = analysis_html(ACCOUNTING, CP, pr=2, pc=2)
        assert out.startswith("<!DOCTYPE html>")
        assert "<table>" in out and "</html>" in out
        assert out.count("<tr>") == len(CP.path) + 1  # header + one per hop

    def test_html_escapes_title(self):
        out = analysis_html(ACCOUNTING, CP, pr=2, pc=2, title="<script>")
        assert "<script>" not in out
        assert "&lt;script&gt;" in out
