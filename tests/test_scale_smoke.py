"""Scale smoke tests: 1.5D training at P=512 and P=1024.

The discrete-event backend exists precisely so simulations of this size
are routine: one OS thread per rank stops scaling long before 1024
ranks, while the event scheduler runs these grids in seconds on one
core.  Each test runs a full telemetry-enabled, fault-injected 1.5D
training step and asserts a generous wall-clock budget — the point is
to catch pathological scheduler regressions (quadratic wakeups,
lock-convoy behavior), not to be a benchmark; the calibrated gates
live in ``benchmarks/bench_simmpi.py``.

The threaded equivalents are skipped by default (they take minutes and
prove nothing new); set ``REPRO_SLOW=1`` to run them.
"""

import os
import time

import numpy as np
import pytest

from repro.dist.train import MLPParams, distributed_mlp_train
from repro.simmpi.engine import SimEngine
from repro.simmpi.faults import FaultPlan, LinkFault, Straggler

slow = pytest.mark.skipif(
    not os.environ.get("REPRO_SLOW"),
    reason="threaded scale runs take minutes; set REPRO_SLOW=1 to include them",
)

RNG = np.random.default_rng(0)


def _scale_run(pr, pc, backend, steps=1):
    dims = (64, max(64, pr), pr)
    batch = pc * 2
    x = RNG.standard_normal((dims[0], 2 * batch))
    y = RNG.integers(0, dims[-1], 2 * batch)
    params0 = MLPParams.init(dims, seed=1)
    plan = FaultPlan(
        seed=5,
        stragglers=(Straggler(rank=3, factor=2.0, jitter=0.05),),
        links=(
            LinkFault(
                src=0, dst=1, latency_factor=4.0, bandwidth_factor=2.0,
                t_start=0.0, t_end=1.0,
            ),
        ),
    )
    engine = SimEngine(pr * pc, backend=backend, trace=True, faults=plan)
    t0 = time.monotonic()
    _, losses, sim = distributed_mlp_train(
        params0, x, y, pr=pr, pc=pc, batch=batch, steps=steps, engine=engine
    )
    wall = time.monotonic() - t0
    # sanity on the run itself: it trained, it traced, the faults fired.
    assert len(losses) == steps and np.isfinite(losses).all()
    assert len(sim.clocks) == pr * pc
    assert min(sim.clocks) > 0.0
    assert sim.failed == ()
    assert engine.tracer.faults("link") or engine.tracer.faults("straggler")
    assert len(engine.tracer.events) > 100 * pr * pc  # telemetry really on
    return wall


@pytest.mark.parametrize("pr,pc", [(16, 32)], ids=["P512"])
def test_event_backend_p512_under_budget(pr, pc):
    wall = _scale_run(pr, pc, "event")
    assert wall < 60.0, f"P={pr*pc} event-backend step took {wall:.1f}s"


@pytest.mark.parametrize("pr,pc", [(32, 32)], ids=["P1024"])
def test_event_backend_p1024_under_budget(pr, pc):
    wall = _scale_run(pr, pc, "event")
    assert wall < 120.0, f"P={pr*pc} event-backend step took {wall:.1f}s"


@slow
@pytest.mark.parametrize("pr,pc", [(16, 32)], ids=["P512"])
def test_thread_backend_p512(pr, pc):
    _scale_run(pr, pc, "thread")


@slow
@pytest.mark.parametrize("pr,pc", [(32, 32)], ids=["P1024"])
def test_thread_backend_p1024(pr, pc):
    _scale_run(pr, pc, "thread")
