"""Tests for the optimizer extensions: per-layer optimal placement,
memory-constrained search, and scaling-curve sweeps."""

import pytest

from repro.core.costs import integrated_cost
from repro.core.memory import memory_footprint
from repro.core.optimizer import best_strategy, optimal_placements
from repro.core.overlap import overlapped_time_from_breakdown
from repro.core.strategy import Placement, ProcessGrid, Strategy
from repro.core.sweep import strong_scaling_curve, weak_scaling_curve
from repro.errors import ConfigurationError, StrategyError
from repro.machine.compute import ComputeModel
from repro.machine.params import cori_knl
from repro.nn import alexnet, mlp

NET = alexnet()
M = cori_knl()
CM = ComputeModel.knl_alexnet()


class TestOptimalPlacements:
    def test_dominates_fixed_families(self):
        """Per-layer optimum must cost no more than any fixed family."""
        for grid in (ProcessGrid(16, 32), ProcessGrid(4, 128), ProcessGrid(2, 2)):
            opt = optimal_placements(NET, 2048, grid, M)
            opt_cost = integrated_cost(NET, 2048, opt, M).total
            for family in (
                Strategy.same_grid_model,
                Strategy.conv_batch_fc_model,
                Strategy.conv_domain_fc_model,
            ):
                fixed_cost = integrated_cost(NET, 2048, family(NET, grid), M).total
                assert opt_cost <= fixed_cost + 1e-15

    def test_alexnet_large_batch_pattern(self):
        """At B=2048 the convolutional layers should leave the model
        path (their Eq. 5 crossovers are far below 2048) while the FC
        layers stay 1.5D (crossovers in the thousands)."""
        strategy = optimal_placements(NET, 2048, ProcessGrid(16, 32), M)
        for w, pl in zip(NET.weighted_layers, strategy.placements):
            if w.is_fc:
                assert pl is Placement.MODEL
            else:
                assert pl is not Placement.MODEL

    def test_small_batch_prefers_model_for_late_convs(self):
        """Below the Eq. 5 crossover (B <= ~13 for conv4/conv5) the
        model placement should win those layers."""
        strategy = optimal_placements(NET, 8, ProcessGrid(4, 2), M)
        by_name = dict(zip([w.name for w in NET.weighted_layers], strategy.placements))
        assert by_name["conv4"] is Placement.MODEL
        assert by_name["conv5"] is Placement.MODEL

    def test_beyond_batch_limit_excludes_batch_placement(self):
        strategy = optimal_placements(NET, 512, ProcessGrid(2, 512), M)
        assert all(pl is not Placement.BATCH for pl in strategy.placements)

    def test_infeasible_grid_rejected(self):
        with pytest.raises(StrategyError):
            optimal_placements(NET, 16, ProcessGrid(1, 32), M)

    def test_mlp_has_no_domain(self):
        net = mlp([128, 64, 10])
        strategy = optimal_placements(net, 64, ProcessGrid(4, 4), M)
        assert all(pl is not Placement.DOMAIN for pl in strategy.placements)

    def test_best_strategy_with_per_layer_never_worse(self):
        plain = best_strategy(NET, 2048, 512, M, CM, per_layer=False)
        with_pl = best_strategy(NET, 2048, 512, M, CM, per_layer=True)
        assert with_pl.total_epoch <= plain.total_epoch + 1e-12


class TestMemoryConstrainedSearch:
    def test_unconstrained_equals_none_limit(self):
        a = best_strategy(NET, 2048, 512, M, CM)
        b = best_strategy(NET, 2048, 512, M, CM, max_memory_elements=1e18)
        assert a.total_epoch == pytest.approx(b.total_epoch)

    def test_tight_limit_forces_model_split(self):
        """Below the full-model footprint, only Pr > 1 grids survive
        (Section 4: 1.5D cuts model replication by Pr)."""
        full = 2 * NET.total_params  # weights + gradients, pure batch floor
        choice = best_strategy(
            NET, 2048, 512, M, CM, max_memory_elements=0.5 * full
        )
        assert choice.grid.pr > 1
        fp = memory_footprint(NET, 2048, choice.strategy)
        assert fp.total <= 0.5 * full

    def test_impossible_limit_raises(self):
        with pytest.raises(StrategyError):
            best_strategy(NET, 2048, 512, M, CM, max_memory_elements=1.0)


class TestScalingCurves:
    def test_strong_curve_monotone_total(self):
        points, table = strong_scaling_curve(NET, 2048, [8, 64, 512], M, CM)
        totals = [pt.best_total_s for pt in points]
        assert totals[0] > totals[1] > totals[2]
        assert len(table) == 3

    def test_strong_curve_marks_pure_batch_limit(self):
        points, _ = strong_scaling_curve(NET, 512, [512, 1024], M, CM)
        assert points[0].pure_batch_total_s is not None
        assert points[1].pure_batch_total_s is None  # P > B: batch infeasible
        assert points[1].speedup_vs_pure_batch is None

    def test_strong_curve_efficiency_column(self):
        _, table = strong_scaling_curve(NET, 2048, [8, 512], M, CM)
        effs = table.column("parallel_efficiency")
        assert effs[0] == pytest.approx(1.0)
        assert 0 < effs[1] <= 1.5

    def test_weak_curve(self):
        points, table = weak_scaling_curve(
            NET, [(64, 256), (256, 1024)], M, CM
        )
        assert len(points) == 2
        assert all(pt.speedup_vs_pure_batch >= 1.0 for pt in points)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            strong_scaling_curve(NET, 2048, [], M, CM)
        with pytest.raises(ConfigurationError):
            weak_scaling_curve(NET, [], M, CM)


class TestCategoryAwareOverlap:
    def test_blocking_allgather_stays_exposed(self):
        grid = ProcessGrid(8, 64)
        bd = integrated_cost(NET, 2048, Strategy.same_grid_model(NET, grid), M)
        compute = 1000.0  # effectively infinite hiding capacity
        t = overlapped_time_from_breakdown(bd, compute)
        blocking = bd.filter("model.allgather_fwd").total
        assert t == pytest.approx(compute + blocking)

    def test_no_compute_means_no_hiding(self):
        grid = ProcessGrid(8, 64)
        bd = integrated_cost(NET, 2048, Strategy.same_grid_model(NET, grid), M)
        assert overlapped_time_from_breakdown(bd, 0.0) == pytest.approx(bd.total)

    def test_domain_strategy_hides_almost_everything(self):
        """Domain layers have no blocking category, so with enough
        compute the whole conv communication hides — the Fig. 10
        mechanism."""
        grid = ProcessGrid(8, 64)
        dom = integrated_cost(NET, 2048, Strategy.conv_domain_fc_model(NET, grid), M)
        compute = 1000.0
        t = overlapped_time_from_breakdown(dom, compute)
        blocking = dom.filter("model.allgather_fwd").total  # FC layers only
        assert t == pytest.approx(compute + blocking)
        assert blocking < 0.1 * dom.total

    def test_validation(self):
        grid = ProcessGrid(2, 2)
        bd = integrated_cost(NET, 2048, Strategy.same_grid_model(NET, grid), M)
        with pytest.raises(ConfigurationError):
            overlapped_time_from_breakdown(bd, -1.0)
        with pytest.raises(ConfigurationError):
            overlapped_time_from_breakdown(bd, 1.0, compute_fraction=1.5)
