"""Setuptools shim: enables legacy editable installs on environments
without the `wheel` package (PEP 517 builds need bdist_wheel)."""
from setuptools import setup

setup()
